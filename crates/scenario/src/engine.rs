//! The scenario engine: executes a [`Scenario`] timeline slot by slot over a
//! live orchestrator — admitting and tearing down slices, shifting traffic
//! regimes, injecting domain faults, renegotiating SLAs — and aggregates the
//! per-scenario metrics.
//!
//! ## Determinism
//!
//! Everything is seeded from [`ScenarioConfig::seed`]: slice construction
//! seeds are derived from the admission order, the rayon fan-out inside the
//! orchestrator shares no RNG between slices, and events fire at scripted
//! slots. Two runs of the same scenario with the same seed produce identical
//! reports (up to the wall-clock fields, which
//! [`ScenarioReport::deterministic_fields_eq`] ignores), whatever the worker
//! thread count.
//!
//! ## Checkpoint / replay
//!
//! The engine executes one slot at a time ([`ScenarioEngine::step_slot`])
//! and serializes its *complete* state between slots — orchestrator (agent
//! networks, optimizer moments, RNG streams, simulator channels, traffic
//! cursors), per-slice statistics and the run-loop cursor itself. A
//! deserialized engine resumes mid-scenario and reproduces the remaining
//! slots bit-for-bit; `crates/replay` builds the checkpoint files and the
//! golden-trace harness on top of this.
//!
//! ## Telemetry
//!
//! Every executed slot is reported to a [`SlotObserver`] as one
//! [`SlotSample`] per active slice (KPIs, shaped reward, Lagrangian
//! multiplier, baseline-switch flag), and every closed episode as an
//! [`EpisodeEndEvent`]. The no-op observer is `&mut ()`.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use onslicing_core::{
    AgentConfig, CoordinationMode, MultiSliceEnvironment, OnSlicingAgent, Orchestrator,
    OrchestratorConfig, RuleBasedBaseline, SliceCheckpoint, SliceEnvironment, SliceEpisodeSummary,
    SlotOutcome,
};
use onslicing_domains::{CapacityOverride, DomainKind, DomainSet, SliceId};
use onslicing_slices::{SliceKind, SlotKpi};

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::spec::{Scenario, ScenarioEvent, SliceSpec, TimedEvent};

/// Derives the master seed of one fleet cell from the fleet-wide seed.
///
/// SplitMix64-style counter keying: the cell index is folded into the
/// master seed through the golden-ratio increment and the SplitMix64
/// finalizer. The finalizer is a bijection and the increment is odd, so for
/// a fixed master seed every cell index maps to a **distinct** seed; the
/// function is pure, so the mapping is stable across runs, processes and
/// thread counts. Each cell then derives its slice RNG chains from its own
/// seed exactly like a standalone scenario run does, which keeps cells
/// statistically independent streams of one keyed family — the same
/// counter-keyed construction the per-slice RNGs use.
pub fn derive_cell_seed(master_seed: u64, cell_index: u32) -> u64 {
    let mut z = master_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(cell_index) + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tuning of a scenario run (everything that is not part of the scenario
/// file itself).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed; every slice's RNG chain derives from it.
    pub seed: u64,
    /// Over-request resolution mechanism.
    pub coordination: CoordinationMode,
    /// Grid resolution of the rule-based baseline calibration.
    pub baseline_buckets: usize,
    /// Offline imitation episodes before a slice goes online (initial and
    /// admitted slices alike).
    pub pretrain_episodes: usize,
    /// Admission-control tuning.
    pub admission: AdmissionConfig,
}

impl ScenarioConfig {
    /// The configuration of fleet cell `cell_index`: identical tuning, seed
    /// replaced by [`derive_cell_seed`] of this configuration's seed.
    pub fn for_cell(&self, cell_index: u32) -> Self {
        Self {
            seed: derive_cell_seed(self.seed, cell_index),
            ..*self
        }
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            coordination: CoordinationMode::default(),
            baseline_buckets: 4,
            // One pretrain episode leaves the cost estimator so uncertain
            // that the safety switch can pin a slice to its baseline for
            // the whole scenario; two make π_θ reliably go online.
            pretrain_episodes: 2,
            admission: AdmissionConfig::default(),
        }
    }
}

/// Per-slice outcome of a scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceReport {
    /// Stable slice id.
    pub id: u32,
    /// Application class.
    pub kind: SliceKind,
    /// Slot the slice joined (0 for initial slices).
    pub admitted_at_slot: usize,
    /// Slot the slice was torn down, if it was.
    pub torn_down_at_slot: Option<usize>,
    /// Completed (or final partial) episodes.
    pub episodes: usize,
    /// Episodes that violated the slice's SLA.
    pub violations: usize,
    /// PPO updates that consumed at least one transition (> 0 means the
    /// slice actually trained online during the scenario).
    pub policy_updates: usize,
    /// Episodes in which the agent switched to its baseline policy.
    pub switched_episodes: usize,
    /// Mean episode-average cost.
    pub avg_cost: f64,
    /// Mean episode-average resource usage in percent.
    pub avg_usage_percent: f64,
}

/// Aggregate outcome of a scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Scheduled scenario length in slots.
    pub total_slots: usize,
    /// Sum over slots of the number of active slices (the work actually
    /// executed).
    pub slice_slots: usize,
    /// Largest number of concurrently active slices.
    pub peak_concurrent_slices: usize,
    /// Events applied (admissions count only when granted).
    pub events_applied: usize,
    /// Admissions the controller rejected.
    pub admissions_denied: usize,
    /// Events that referenced a slice no longer (or not yet) active.
    pub events_skipped: usize,
    /// Total slice-episodes closed.
    pub slice_episodes: usize,
    /// Percentage of slice-episodes that violated their SLA.
    pub sla_violation_percent: f64,
    /// Mean episode-average cost across slice-episodes.
    pub avg_cost: f64,
    /// Mean per-slice-slot cost over the whole run (total slot cost over
    /// `slice_slots`), folded slot-by-slot from the orchestrator's cheap
    /// [`onslicing_core::SlotAggregate`] — no per-slot telemetry retention
    /// needed.
    pub avg_slot_cost: f64,
    /// Mean per-slice-slot resource utilization in percent, folded the
    /// same way.
    pub avg_slot_usage_percent: f64,
    /// Mean agent↔manager coordination rounds per executed slot.
    pub avg_coordination_rounds: f64,
    /// Executed slice-slots per wall-clock second (scenario throughput).
    pub slice_slots_per_second: f64,
    /// Wall-clock milliseconds accumulated over all executed slots. The
    /// counter is checkpointed with the rest of the run state, so a resumed
    /// run reports the *total* across processes (prefix + suffix) — which
    /// keeps `slice_slots_per_second` consistent with `slice_slots`, at the
    /// price of mixing timings from different machines if the checkpoint
    /// moved hosts.
    pub wall_clock_ms: f64,
    /// One report per slice that ever existed, in id order.
    pub slices: Vec<SliceReport>,
}

impl ScenarioReport {
    fn initial(scenario: &Scenario, seed: u64) -> Self {
        Self {
            scenario: scenario.name.clone(),
            seed,
            total_slots: scenario.total_slots,
            slice_slots: 0,
            peak_concurrent_slices: 0,
            events_applied: 0,
            admissions_denied: 0,
            events_skipped: 0,
            slice_episodes: 0,
            sla_violation_percent: 0.0,
            avg_cost: 0.0,
            avg_slot_cost: 0.0,
            avg_slot_usage_percent: 0.0,
            avg_coordination_rounds: 0.0,
            slice_slots_per_second: 0.0,
            wall_clock_ms: 0.0,
            slices: Vec::new(),
        }
    }

    /// Whether any reported metric is NaN **or infinite** (the CI smoke
    /// check). `±inf` is as much of a health failure as NaN — a cost that
    /// overflowed to infinity must not sail through the gate — so the check
    /// is on `is_finite`, not `is_nan`.
    pub fn has_non_finite(&self) -> bool {
        let aggregate = [
            self.sla_violation_percent,
            self.avg_cost,
            self.avg_slot_cost,
            self.avg_slot_usage_percent,
            self.avg_coordination_rounds,
            self.slice_slots_per_second,
            self.wall_clock_ms,
        ];
        aggregate.iter().any(|v| !v.is_finite())
            || self
                .slices
                .iter()
                .any(|s| !s.avg_cost.is_finite() || !s.avg_usage_percent.is_finite())
    }

    /// Equality on everything except the wall-clock-derived fields — the
    /// determinism contract of a fixed-seed run.
    pub fn deterministic_fields_eq(&self, other: &Self) -> bool {
        let strip = |r: &Self| {
            let mut r = r.clone();
            r.wall_clock_ms = 0.0;
            r.slice_slots_per_second = 0.0;
            r
        };
        strip(self) == strip(other)
    }
}

/// One slice's telemetry for one executed slot, handed to the
/// [`SlotObserver`] right after the orchestration round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotSample {
    /// Global scenario slot (0-based).
    pub slot: usize,
    /// Stable slice id.
    pub slice: u32,
    /// Application class.
    pub kind: SliceKind,
    /// The full KPI record the slice's simulator reported.
    pub kpi: SlotKpi,
    /// The constraint-shaped learning reward under the agent's current
    /// Lagrangian multiplier.
    pub reward: f64,
    /// The agent's current Lagrangian multiplier λ.
    pub lambda: f64,
    /// Whether the proactive safety switch handed this slot to the baseline.
    pub used_baseline: bool,
}

/// A closed slice-episode, handed to the [`SlotObserver`] at episode
/// boundaries (and at scenario end for final partial episodes, tagged with
/// `slot == total_slots`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeEndEvent {
    /// Global scenario slot at which the episode closed.
    pub slot: usize,
    /// Stable slice id.
    pub slice: u32,
    /// The episode summary (average cost, violation flag, switch flag).
    pub summary: SliceEpisodeSummary,
}

/// Receiver of per-slot and per-episode telemetry during a scenario run.
///
/// The unit type `()` is the no-op observer: `engine.run_with_observer(&mut ())`.
pub trait SlotObserver {
    /// Called once per executed slot with one sample per active slice, in
    /// slice position order (stable ids, positions shift on teardown).
    fn on_slot(&mut self, samples: &[SlotSample]);
    /// Called every time a slice closes an episode.
    fn on_episode_end(&mut self, event: &EpisodeEndEvent);
}

impl SlotObserver for () {
    fn on_slot(&mut self, _samples: &[SlotSample]) {}
    fn on_episode_end(&mut self, _event: &EpisodeEndEvent) {}
}

/// Accumulates one slice's episode history during a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SliceStats {
    kind: SliceKind,
    admitted_at_slot: usize,
    torn_down_at_slot: Option<usize>,
    episode_costs: Vec<f64>,
    episode_usages: Vec<f64>,
    violations: usize,
    policy_updates: usize,
    switched_episodes: usize,
}

impl SliceStats {
    fn new(kind: SliceKind, admitted_at_slot: usize) -> Self {
        Self {
            kind,
            admitted_at_slot,
            torn_down_at_slot: None,
            episode_costs: Vec::new(),
            episode_usages: Vec::new(),
            violations: 0,
            policy_updates: 0,
            switched_episodes: 0,
        }
    }

    fn to_report(&self, id: u32) -> SliceReport {
        let n = self.episode_costs.len();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        SliceReport {
            id,
            kind: self.kind,
            admitted_at_slot: self.admitted_at_slot,
            torn_down_at_slot: self.torn_down_at_slot,
            episodes: n,
            violations: self.violations,
            policy_updates: self.policy_updates,
            switched_episodes: self.switched_episodes,
            avg_cost: mean(&self.episode_costs),
            avg_usage_percent: mean(&self.episode_usages),
        }
    }
}

/// A scheduled restoration of transient state (burst end, fault healed).
///
/// Each restore remembers the value it *expects* to find (its own override)
/// and the value it captured when the override began; if a later event
/// changed the state in the meantime, the restore is skipped so the newer
/// regime wins. Nested transients (a short fault inside a long one) unwind
/// correctly; restores of partially-overlapping transients whose inner end
/// outlives the outer keep the inner's captured value. Known limitation:
/// "still in effect" is detected by value equality, so a permanent event
/// that sets *exactly* the value an active transient applied is treated as
/// that transient and rolled back at its expiry — script a marginally
/// different value (2.0 vs 2.001) if that corner ever matters.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Restore {
    Domain {
        domain: DomainKind,
        expected: f64,
        previous: f64,
    },
    Traffic {
        slice: u32,
        expected: f64,
        previous: f64,
    },
}

/// Builds agent + environment pairs from [`SliceSpec`]s with seeds derived
/// from the construction order, caching calibrated baselines (calibration is
/// a grid search, so clones are much cheaper than re-deriving identical
/// policies for cloned slices).
///
/// The cache is *not* part of the serialized state: calibration is a
/// deterministic function of `(kind, peak rate, cost threshold, seed)`, so a
/// restored factory rebuilds identical entries on demand.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SliceFactory {
    seed: u64,
    horizon: usize,
    baseline_buckets: usize,
    // A BTreeMap, not a HashMap: the cache is keyed by bit-exact floats
    // and only ever read through `entry()`, so ordering is immaterial to
    // behavior today — but an unordered container in a deterministic
    // crate is a standing hazard (any future iteration would inherit
    // process-seeded order), and detlint's `unordered-container` rule
    // bans them outright.
    #[serde(skip)]
    baseline_cache: BTreeMap<(SliceKind, u64, u64), RuleBasedBaseline>,
    slices_built: u64,
}

impl SliceFactory {
    fn new(config: &ScenarioConfig, horizon: usize) -> Self {
        Self {
            seed: config.seed,
            horizon,
            baseline_buckets: config.baseline_buckets,
            baseline_cache: BTreeMap::new(),
            slices_built: 0,
        }
    }

    fn build(&mut self, spec: &SliceSpec) -> (OnSlicingAgent, SliceEnvironment) {
        let network = onslicing_netsim::NetworkConfig::testbed_default();
        let ordinal = self.slices_built;
        self.slices_built += 1;
        let seed = self.seed.wrapping_add(1_000).wrapping_add(17 * ordinal);
        let sla = spec.sla();
        let trace_config = spec.trace_config();
        let cache_key = (
            spec.kind,
            trace_config.peak_rate.to_bits(),
            sla.cost_threshold.to_bits(),
        );
        let baseline = self
            .baseline_cache
            .entry(cache_key)
            .or_insert_with(|| {
                RuleBasedBaseline::calibrate(
                    spec.kind,
                    &sla,
                    &network,
                    trace_config.peak_rate,
                    self.baseline_buckets,
                    self.seed.wrapping_add(77),
                )
            })
            .clone();
        let env = SliceEnvironment::with_trace_config(
            spec.kind,
            sla,
            network,
            trace_config,
            self.horizon,
            seed,
        );
        let agent = OnSlicingAgent::new(
            spec.kind,
            sla,
            baseline,
            AgentConfig::onslicing().scaled_down(self.horizon),
            seed.wrapping_add(1),
        );
        (agent, env)
    }
}

/// The serializable run-loop cursor: everything `run` used to keep in local
/// variables, so a checkpoint taken between slots captures it too.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RunState {
    /// Next slot to execute (0-based global scenario time).
    slot: usize,
    /// Whether the final report has been produced.
    finished: bool,
    /// The accumulating report (aggregate fields are filled at the end).
    report: ScenarioReport,
    /// The event timeline, sorted by firing slot (stable, so same-slot
    /// events keep their scripted order).
    timeline: Vec<TimedEvent>,
    /// Index of the next unfired timeline event.
    next_event: usize,
    /// Pending transient-state restorations, as `(due_slot, restore)`.
    restores: Vec<(usize, Restore)>,
    /// Total coordination interactions over executed slots.
    rounds_total: usize,
    /// Slots in which at least one slice was active.
    executed_slots: usize,
    /// Sum of per-slice-slot costs over executed slots.
    slot_cost_total: f64,
    /// Sum over executed slots of (mean usage × active slices).
    slot_usage_weighted: f64,
}

impl RunState {
    fn new(scenario: &Scenario, seed: u64) -> Self {
        let mut timeline = scenario.events.clone();
        timeline.sort_by_key(|t| t.at_slot);
        Self {
            slot: 0,
            finished: false,
            report: ScenarioReport::initial(scenario, seed),
            timeline,
            next_event: 0,
            restores: Vec::new(),
            rounds_total: 0,
            executed_slots: 0,
            slot_cost_total: 0.0,
            slot_usage_weighted: 0.0,
        }
    }
}

/// How one applied event changed the report counters.
enum EventOutcome {
    Applied(Option<(usize, Restore)>),
    Denied,
    Skipped,
}

/// How a live-injected event resolved (the public face of the scripted
/// path's internal outcome, minus the restore plumbing the engine keeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LiveEventOutcome {
    /// The event took effect (admission granted, teardown done, …).
    Applied,
    /// An admission was denied by the capacity check.
    Denied,
    /// The event referenced a slice that is not active here.
    Skipped,
}

/// One pending traffic-scale restoration traveling with a migrated slice
/// (slice ids are per-cell, so the restore is re-keyed on injection).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficRestore {
    /// Global slot the restoration is due at.
    pub due_slot: usize,
    /// The scale the restore expects to find (its own override).
    pub expected: f64,
    /// The scale to roll back to.
    pub previous: f64,
}

/// A slice detached for live migration: its complete state plus the
/// transient traffic restores still scheduled against it. Produced by
/// [`ScenarioEngine::extract_slice`], consumed by
/// [`ScenarioEngine::inject_slice`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceMigration {
    /// The slice's full state (agent, environment, mid-episode position).
    pub checkpoint: SliceCheckpoint,
    /// Pending burst expiries that must fire in the slice's new cell.
    pub traffic_restores: Vec<TrafficRestore>,
}

/// The engine: a scenario, its configuration and the live deployment.
///
/// Serializable between slots: `serde_json::to_string(&engine)` captures the
/// complete deployment (see the module docs), and the deserialized engine
/// continues the scenario bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioEngine {
    scenario: Scenario,
    config: ScenarioConfig,
    orch: Orchestrator,
    admission: AdmissionController,
    factory: SliceFactory,
    /// Per-slice episode statistics, keyed by stable id. A BTreeMap keeps
    /// both the aggregation order and the serialized checkpoint bytes
    /// canonical.
    stats: BTreeMap<u32, SliceStats>,
    run: RunState,
    /// Slices admitted or injected since the last orchestration round —
    /// the initial deployment included, until slot 0's round enforces it:
    /// their estimated shares are reserved by
    /// [`ScenarioEngine::check_admission`] until they enforce for the
    /// first time. Serialized with the rest of the engine: the elastic
    /// fleet admits between slots (at sync boundaries), so a checkpoint
    /// taken there must not silently drop the pending reservations.
    unenforced_admissions: usize,
    /// Reused slot-round scratch: the orchestrator writes each round into
    /// this outcome in place, and the per-slice telemetry samples are
    /// rebuilt in the same buffer every slot. Pure scratch — skipped by
    /// the checkpoint serializer, carries no cross-slot state.
    #[serde(skip)]
    slot_outcome: SlotOutcome,
    #[serde(skip)]
    slot_samples: Vec<SlotSample>,
}

impl ScenarioEngine {
    /// Builds the initial deployment of a validated scenario (including
    /// offline pre-training of the initial agents).
    pub fn new(scenario: Scenario, config: ScenarioConfig) -> Result<Self, String> {
        Self::with_admission_slack(scenario, config, 0)
    }

    /// Like [`ScenarioEngine::new`], but validates the scenario with
    /// `admission_slack` extra assignable slice ids. This is the
    /// constructor a fleet layer must use for materialized per-cell
    /// scenarios: a cell timeline may legally reference an id that only a
    /// fleet-routed admission will assign at run time
    /// ([`crate::FleetScenario::validate`] accepts it), so validating the
    /// cell scenario standalone with zero slack would reject a fleet
    /// scenario the fleet validator already blessed.
    pub fn with_admission_slack(
        scenario: Scenario,
        config: ScenarioConfig,
        admission_slack: usize,
    ) -> Result<Self, String> {
        scenario.validate_with_admission_slack(admission_slack)?;
        let admission = AdmissionController::try_new(config.admission)?;
        let mut factory = SliceFactory::new(&config, scenario.horizon);
        let mut envs = Vec::new();
        let mut agents = Vec::new();
        let mut stats = BTreeMap::new();
        for (i, spec) in scenario.initial_slices.iter().enumerate() {
            let (agent, env) = factory.build(spec);
            agents.push(agent);
            envs.push(env);
            stats.insert(i as u32, SliceStats::new(spec.kind, 0));
        }
        let orch = Orchestrator::new(
            MultiSliceEnvironment::from_envs(envs),
            agents,
            DomainSet::with_parameters(scenario.capacity, 1.0),
            OrchestratorConfig {
                coordination: config.coordination,
                episodes_per_epoch: 1,
            },
        );
        let run = RunState::new(&scenario, config.seed);
        // The initial slices enforce nothing until slot 0's orchestration
        // round, so their estimated shares count as pending too — a
        // scripted (or fleet-routed) admission at slot 0 must not treat
        // the untouched residual capacity as free.
        let unenforced_admissions = scenario.initial_slices.len();
        let mut engine = Self {
            scenario,
            config,
            orch,
            admission,
            factory,
            stats,
            run,
            unenforced_admissions,
            slot_outcome: SlotOutcome::default(),
            slot_samples: Vec::new(),
        };
        if engine.config.pretrain_episodes > 0 {
            engine
                .orch
                .offline_pretrain_all(engine.config.pretrain_episodes);
        }
        engine.orch.env_mut().reset_all();
        Ok(engine)
    }

    /// The scenario being executed.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The run's configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The next slot to execute (equals `total_slots` once the timeline is
    /// exhausted).
    pub fn current_slot(&self) -> usize {
        self.run.slot
    }

    /// Whether the run has been completed (the final report produced).
    pub fn is_finished(&self) -> bool {
        self.run.finished
    }

    /// The live orchestrator (inspection before or after the run).
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orch
    }

    /// Mutable access to the live orchestrator.
    pub fn orchestrator_mut(&mut self) -> &mut Orchestrator {
        &mut self.orch
    }

    /// The engine's admission controller (a fleet-level controller runs the
    /// same check across cells before routing an admission here).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Slices admitted or injected since the last orchestration round —
    /// capacity they will claim is pledged but not yet visible in
    /// [`onslicing_domains::DomainSet::residual_capacity`].
    pub fn pending_admissions(&self) -> usize {
        self.unenforced_admissions
    }

    /// Whether one more slice fits this cell right now, with every pending
    /// (admitted-but-not-yet-enforced) slice's estimated share reserved.
    /// This is the one admission check every same-boundary caller — the
    /// scripted event path, the fleet admission router, the balancer's
    /// migration target selection — must go through, so capacity pledged by
    /// an earlier grant in the same slot or fleet sync round is never
    /// pledged twice.
    pub fn check_admission(&self) -> Result<(), crate::admission::AdmissionDenied> {
        let reserved =
            self.unenforced_admissions as f64 * self.admission.reserved_share_per_admission();
        self.admission
            .evaluate_with_reserved(self.orch.domains(), reserved)
    }

    /// Total SLA-violating episodes closed so far across every slice — a
    /// deterministic load signal (unlike wall-clock latency) a fleet
    /// balancer may base migration plans on.
    pub fn total_violations(&self) -> usize {
        self.stats.values().map(|s| s.violations).sum()
    }

    /// Total episodes closed so far across every slice.
    pub fn total_episodes(&self) -> usize {
        self.stats.values().map(|s| s.episode_costs.len()).sum()
    }

    /// Cumulative deterministic cost of every executed slot so far — the
    /// running numerator of the report's `avg_slot_cost`. Like the violation
    /// totals, this is pure simulated state, so a balance policy may use it.
    pub fn slot_cost_total(&self) -> f64 {
        self.run.slot_cost_total
    }

    /// Slice-slots executed so far — the running denominator of the
    /// report's `avg_slot_cost`.
    pub fn slice_slots(&self) -> usize {
        self.run.report.slice_slots
    }

    /// Mean normalized traffic this cell's slices will see over the next
    /// `window` slots, read off each slice's deterministic arrival trace
    /// from its current in-episode position (traces wrap at the horizon).
    /// A pure function of simulated state — wall clocks never enter — so a
    /// predictive balance policy may plan on it without breaking the
    /// byte-identical-trace contract. Returns 0.0 for an empty cell or a
    /// zero window.
    pub fn forecast_normalized_traffic(&self, window: usize) -> f64 {
        let envs = self.orch.env().envs();
        if envs.is_empty() || window == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for env in envs {
            let start = env.slot();
            let mut sum = 0.0;
            for k in 0..window {
                sum += env.normalized_traffic_at(start + k);
            }
            total += sum / window as f64;
        }
        total / envs.len() as f64
    }

    /// Admits a slice built from `spec` without consulting this engine's
    /// admission controller — the caller (e.g. a fleet-level admission
    /// controller that already reserved capacity here) decides placement.
    /// The slice pre-trains offline exactly like a scripted admission.
    pub fn force_admit(&mut self, spec: &SliceSpec, slot: usize) -> SliceId {
        self.run.report.events_applied += 1;
        self.grant_admission(spec, slot)
    }

    /// Applies one event to the live deployment *now* — at the current slot
    /// boundary, exactly as if the scenario timeline had scheduled it here.
    /// This is the entry point for external control (a service daemon
    /// relaying admission/teardown/renegotiation requests): the event runs
    /// through the same dispatch as scripted events, admissions included
    /// ([`ScenarioEngine::check_admission`] reserves the shares of every
    /// slice granted earlier at this boundary), and the report counters
    /// advance identically — so a run driven by a logged request stream is
    /// bit-for-bit a run with those events spliced into the timeline.
    ///
    /// The event is validated first; an invalid event is an error and
    /// touches nothing. Denials and skips (e.g. tearing down an unknown
    /// slice) are outcomes, not errors.
    pub fn inject_event(
        &mut self,
        event: &ScenarioEvent,
        obs: &mut dyn SlotObserver,
    ) -> Result<LiveEventOutcome, String> {
        event.validate()?;
        if self.run.finished {
            return Err("cannot inject an event into a finished run".to_string());
        }
        let slot = self.run.slot;
        Ok(match self.apply_event(slot, event, obs) {
            EventOutcome::Applied(restore) => {
                self.run.report.events_applied += 1;
                if let Some(r) = restore {
                    self.run.restores.push(r);
                }
                LiveEventOutcome::Applied
            }
            EventOutcome::Denied => {
                self.run.report.admissions_denied += 1;
                LiveEventOutcome::Denied
            }
            EventOutcome::Skipped => {
                self.run.report.events_skipped += 1;
                LiveEventOutcome::Skipped
            }
        })
    }

    /// Detaches an active slice for migration: deregisters it from this
    /// cell's domain managers and returns its complete state (agent
    /// weights/optimizer/RNG, environment simulator/trace cursors), the
    /// partial episode included — plus any transient traffic restores still
    /// scheduled against the slice, which must travel with it (a slice
    /// migrated mid-burst would otherwise keep the burst scale forever: the
    /// orphaned restore in this cell is skipped, and the new cell knows
    /// nothing about the expiry). The departed slice's report stops here
    /// with `torn_down_at_slot = slot`; its in-flight episode closes in
    /// whichever cell hosts it next.
    pub fn extract_slice(&mut self, id: u32, slot: usize) -> Result<SliceMigration, String> {
        let checkpoint = self.orch.export_slice(SliceId(id)).map_err(String::from)?;
        self.stats
            .get_mut(&id)
            .expect("every active slice has stats")
            .torn_down_at_slot = Some(slot);
        let mut traffic_restores = Vec::new();
        self.run
            .restores
            .retain(|(due_slot, restore)| match restore {
                Restore::Traffic {
                    slice,
                    expected,
                    previous,
                } if *slice == id => {
                    traffic_restores.push(TrafficRestore {
                        due_slot: *due_slot,
                        expected: *expected,
                        previous: *previous,
                    });
                    false
                }
                _ => true,
            });
        Ok(SliceMigration {
            checkpoint,
            traffic_restores,
        })
    }

    /// Attaches a migrated slice under this engine's next free id. The
    /// agent and environment resume bit-for-bit — no reset, pre-training or
    /// factory seed is consumed, so the host cell's own slice-construction
    /// chain is unaffected by arrivals — and the slice's pending traffic
    /// restores are re-scheduled here under its new id, so a burst that
    /// began in the old cell still expires on time in the new one.
    pub fn inject_slice(
        &mut self,
        migration: SliceMigration,
        slot: usize,
    ) -> Result<SliceId, String> {
        let kind = migration.checkpoint.kind;
        let id = self
            .orch
            .import_slice(migration.checkpoint)
            .map_err(String::from)?;
        self.stats.insert(id.0, SliceStats::new(kind, slot));
        for r in migration.traffic_restores {
            self.run.restores.push((
                r.due_slot,
                Restore::Traffic {
                    slice: id.0,
                    expected: r.expected,
                    previous: r.previous,
                },
            ));
        }
        self.unenforced_admissions += 1;
        Ok(id)
    }

    /// Closes the running episode of the slice at `index`: harvests the
    /// summary, updates the policy, resets the environment.
    fn close_episode(&mut self, index: usize, slot: usize, obs: &mut dyn SlotObserver) {
        let id = self.orch.slice_ids()[index].0;
        let summary = self.orch.agents_mut()[index].end_episode();
        let update = self.orch.agents_mut()[index].update_policy();
        let stats = self.stats.get_mut(&id).expect("every slice has stats");
        stats.episode_costs.push(summary.avg_cost);
        stats.episode_usages.push(summary.avg_usage_percent);
        if summary.violated {
            stats.violations += 1;
        }
        if summary.switched_to_baseline {
            stats.switched_episodes += 1;
        }
        if update.num_transitions > 0 {
            stats.policy_updates += 1;
        }
        self.orch.env_mut().envs_mut()[index].reset();
        obs.on_episode_end(&EpisodeEndEvent {
            slot,
            slice: id,
            summary,
        });
    }

    /// Builds, pre-trains and admits a slice from its spec, bypassing the
    /// admission check — the caller (scripted event path, fleet-level
    /// admission) has already decided the slice may join.
    fn grant_admission(&mut self, slice: &SliceSpec, slot: usize) -> SliceId {
        let (mut agent, mut env) = self.factory.build(slice);
        if self.config.pretrain_episodes > 0 {
            // Admitted slices pre-train offline before going live, exactly
            // like the initial deployment did.
            agent.offline_pretrain(&mut env, self.config.pretrain_episodes);
        }
        env.reset();
        let id = self
            .orch
            .admit_slice(agent, env)
            .expect("fresh slice ids never collide");
        self.stats.insert(id.0, SliceStats::new(slice.kind, slot));
        self.unenforced_admissions += 1;
        id
    }

    /// Applies one scripted event and reports how it resolved. Admissions
    /// go through [`ScenarioEngine::check_admission`], which reserves the
    /// estimated shares of every slice granted earlier in the same slot —
    /// scripted, fleet-routed or migrated in — so one slot's burst of
    /// admissions cannot pledge the same residual capacity repeatedly.
    fn apply_event(
        &mut self,
        slot: usize,
        event: &ScenarioEvent,
        obs: &mut dyn SlotObserver,
    ) -> EventOutcome {
        match event {
            ScenarioEvent::AdmitSlice { slice } => {
                if self.check_admission().is_err() {
                    // The denied slice still consumes its id: scripted ids
                    // are assigned by admission-event order, and later
                    // events must keep targeting the slices the file author
                    // numbered, whatever this admission's runtime outcome.
                    let _ = self.orch.reserve_slice_id();
                    return EventOutcome::Denied;
                }
                self.grant_admission(slice, slot);
                EventOutcome::Applied(None)
            }
            ScenarioEvent::TeardownSlice { slice } => {
                let Some(index) = self.orch.index_of(SliceId(*slice)) else {
                    return EventOutcome::Skipped;
                };
                // Close the partial episode so its slots still count.
                if self.orch.env().envs()[index].slot() > 0 {
                    self.close_episode(index, slot, obs);
                }
                self.orch
                    .teardown_slice(SliceId(*slice))
                    .expect("index_of verified the slice is active");
                self.stats
                    .get_mut(slice)
                    .expect("every slice has stats")
                    .torn_down_at_slot = Some(slot);
                EventOutcome::Applied(None)
            }
            ScenarioEvent::SetTrafficScale { slice, scale } => {
                let Some(index) = self.orch.index_of(SliceId(*slice)) else {
                    return EventOutcome::Skipped;
                };
                self.orch.env_mut().envs_mut()[index].set_traffic_scale(*scale);
                EventOutcome::Applied(None)
            }
            ScenarioEvent::SetTraceProfile { slice, profile } => {
                let Some(index) = self.orch.index_of(SliceId(*slice)) else {
                    return EventOutcome::Skipped;
                };
                self.orch.env_mut().envs_mut()[index].set_trace_config(profile.clone());
                EventOutcome::Applied(None)
            }
            ScenarioEvent::TrafficBurst {
                slice,
                scale,
                duration_slots,
            } => {
                let Some(index) = self.orch.index_of(SliceId(*slice)) else {
                    return EventOutcome::Skipped;
                };
                let previous = self.orch.env().envs()[index].traffic_scale();
                self.orch.env_mut().envs_mut()[index].set_traffic_scale(*scale);
                EventOutcome::Applied(Some((
                    slot + duration_slots,
                    Restore::Traffic {
                        slice: *slice,
                        expected: *scale,
                        previous,
                    },
                )))
            }
            ScenarioEvent::DomainFault {
                domain,
                capacity_scale,
                duration_slots,
            } => {
                let previous = self.orch.domains().manager(*domain).capacity_scale();
                self.orch
                    .domains_mut()
                    .apply_capacity_override(&CapacityOverride {
                        domain: *domain,
                        scale: *capacity_scale,
                    });
                EventOutcome::Applied(Some((
                    slot + duration_slots,
                    Restore::Domain {
                        domain: *domain,
                        expected: *capacity_scale,
                        previous,
                    },
                )))
            }
            ScenarioEvent::RenegotiateSla {
                slice,
                cost_threshold,
            } => {
                let Some(index) = self.orch.index_of(SliceId(*slice)) else {
                    return EventOutcome::Skipped;
                };
                let sla = self.orch.agents()[index]
                    .sla()
                    .with_cost_threshold(*cost_threshold);
                self.orch
                    .renegotiate_sla(SliceId(*slice), sla)
                    .expect("index_of verified the slice is active");
                EventOutcome::Applied(None)
            }
        }
    }

    /// Fires the transient-state restorations due at `slot`: a fault
    /// scheduled to end here heals before new events and the orchestration
    /// round. A restore only fires if its own override is still in effect;
    /// if a later event re-shaped the state meanwhile, the newer regime wins
    /// and the restore is dropped.
    fn fire_due_restores(&mut self, slot: usize) {
        let due: Vec<Restore> = {
            let (fire, keep): (Vec<_>, Vec<_>) =
                self.run.restores.drain(..).partition(|(at, _)| *at <= slot);
            self.run.restores = keep;
            fire.into_iter().map(|(_, r)| r).collect()
        };
        for restore in due {
            match restore {
                Restore::Domain {
                    domain,
                    expected,
                    previous,
                } => {
                    if self.orch.domains().manager(domain).capacity_scale() == expected {
                        self.orch
                            .domains_mut()
                            .apply_capacity_override(&CapacityOverride {
                                domain,
                                scale: previous,
                            });
                    }
                }
                Restore::Traffic {
                    slice,
                    expected,
                    previous,
                } => {
                    if let Some(index) = self.orch.index_of(SliceId(slice)) {
                        if self.orch.env().envs()[index].traffic_scale() == expected {
                            self.orch.env_mut().envs_mut()[index].set_traffic_scale(previous);
                        }
                    }
                }
            }
        }
    }

    /// Executes exactly one scenario slot — restores, scripted events, one
    /// coordinated orchestration round, telemetry, episode boundaries —
    /// and returns whether slots remain.
    ///
    /// # Panics
    /// Panics if the run has already completed.
    pub fn step_slot(&mut self, obs: &mut dyn SlotObserver) -> bool {
        assert!(
            !self.run.finished && self.run.slot < self.scenario.total_slots,
            "ScenarioEngine::run consumed the timeline already; build a new engine for a fresh run"
        );
        // detlint: allow(wall-clock) -- report-only: accumulates into
        // report.wall_clock_ms, which TelemetryTrace never serializes.
        let start = Instant::now();
        let slot = self.run.slot;
        self.fire_due_restores(slot);
        // Slices granted since the last orchestration round (earlier this
        // slot, or at a fleet sync boundary just before it) have enforced
        // nothing yet; `check_admission` inside the admission events
        // reserves their estimated shares (the flash-crowd over-admission
        // fix).
        while self.run.next_event < self.run.timeline.len()
            && self.run.timeline[self.run.next_event].at_slot <= slot
        {
            let event = self.run.timeline[self.run.next_event].event.clone();
            self.run.next_event += 1;
            match self.apply_event(slot, &event, obs) {
                EventOutcome::Applied(restore) => {
                    self.run.report.events_applied += 1;
                    if let Some(r) = restore {
                        self.run.restores.push(r);
                    }
                }
                EventOutcome::Denied => self.run.report.admissions_denied += 1,
                EventOutcome::Skipped => self.run.report.events_skipped += 1,
            }
        }
        if self.orch.num_slices() > 0 {
            // Reused-workspace round: the orchestrator overwrites the
            // engine's scratch outcome in place (no per-slot allocations
            // once the buffers are warm), and the telemetry samples are
            // rebuilt in the engine's own reusable buffer.
            self.orch.run_slot_into(true, &mut self.slot_outcome);
            let outcome = &self.slot_outcome;
            let aggregate = outcome.aggregate();
            self.run.rounds_total += aggregate.interactions;
            self.run.executed_slots += 1;
            self.run.slot_cost_total += aggregate.total_cost;
            self.run.slot_usage_weighted += aggregate.mean_usage_percent * aggregate.slices as f64;
            self.run.report.slice_slots += aggregate.slices;
            self.run.report.peak_concurrent_slices =
                self.run.report.peak_concurrent_slices.max(aggregate.slices);
            self.slot_samples.clear();
            self.slot_samples
                .extend((0..self.orch.num_slices()).map(|i| {
                    let agent = &self.orch.agents()[i];
                    SlotSample {
                        slot,
                        slice: self.orch.slice_ids()[i].0,
                        kind: agent.kind(),
                        kpi: outcome.kpis[i],
                        reward: agent.shaped_reward(&outcome.kpis[i]),
                        lambda: agent.lambda(),
                        used_baseline: outcome.decisions[i].used_baseline,
                    }
                }));
            obs.on_slot(&self.slot_samples);
            // Staggered per-slice episode boundaries: a slice admitted at
            // slot s ends its first episode at s + horizon.
            for index in 0..self.orch.num_slices() {
                let env = &self.orch.env().envs()[index];
                if env.slot() >= env.horizon() {
                    self.close_episode(index, slot, obs);
                }
            }
        }
        // Every active slice enforced its allocation this slot, so the
        // pending-admission reservations are now visible in the domain
        // managers' residual capacity and the counter clears. (With zero
        // active slices no round ran, but then nothing was admitted either.)
        self.unenforced_admissions = 0;
        self.run.slot += 1;
        self.run.report.wall_clock_ms += start.elapsed().as_secs_f64() * 1_000.0;
        self.run.slot < self.scenario.total_slots
    }

    /// Executes slots until global time reaches `slot` (clamped to the
    /// scenario end), e.g. to position the engine for a mid-run checkpoint.
    pub fn run_until(&mut self, slot: usize, obs: &mut dyn SlotObserver) {
        while self.run.slot < slot.min(self.scenario.total_slots) {
            self.step_slot(obs);
        }
    }

    /// Closes the final partial episode of every still-active slice and
    /// produces the aggregated report. Called automatically by
    /// [`ScenarioEngine::run_with_observer`] once the timeline is exhausted.
    fn finish(&mut self, obs: &mut dyn SlotObserver) -> ScenarioReport {
        // detlint: allow(wall-clock) -- report-only: accumulates into
        // report.wall_clock_ms, which TelemetryTrace never serializes.
        let start = Instant::now();
        self.run.finished = true;
        for index in 0..self.orch.num_slices() {
            if self.orch.env().envs()[index].slot() > 0 {
                self.close_episode(index, self.scenario.total_slots, obs);
            }
        }
        let mut report = self.run.report.clone();
        let mut per_slice: Vec<(u32, &SliceStats)> =
            self.stats.iter().map(|(k, v)| (*k, v)).collect();
        per_slice.sort_by_key(|(id, _)| *id);
        let mut episode_costs = 0.0;
        for (id, stats) in per_slice {
            let slice_report = stats.to_report(id);
            report.slice_episodes += slice_report.episodes;
            report.sla_violation_percent += slice_report.violations as f64;
            episode_costs += slice_report.avg_cost * slice_report.episodes as f64;
            report.slices.push(slice_report);
        }
        if report.slice_episodes > 0 {
            report.sla_violation_percent *= 100.0 / report.slice_episodes as f64;
            report.avg_cost = episode_costs / report.slice_episodes as f64;
        }
        if self.run.executed_slots > 0 {
            report.avg_coordination_rounds =
                self.run.rounds_total as f64 / self.run.executed_slots as f64;
        }
        if report.slice_slots > 0 {
            report.avg_slot_cost = self.run.slot_cost_total / report.slice_slots as f64;
            report.avg_slot_usage_percent =
                self.run.slot_usage_weighted / report.slice_slots as f64;
        }
        report.wall_clock_ms += start.elapsed().as_secs_f64() * 1_000.0;
        report.slice_slots_per_second = if report.wall_clock_ms > 0.0 {
            report.slice_slots as f64 / (report.wall_clock_ms / 1_000.0)
        } else {
            0.0
        };
        self.run.report = report.clone();
        report
    }

    /// Executes the remaining scenario slots (all of them on a fresh engine,
    /// the tail on a restored checkpoint) and returns the aggregated report,
    /// streaming telemetry to `obs` along the way.
    ///
    /// # Panics
    /// Panics when called after the run completed: the timeline has already
    /// been consumed and the deployment state mutated, so a replay would
    /// produce a silently wrong report. Build a new engine for a fresh run.
    pub fn run_with_observer(&mut self, obs: &mut dyn SlotObserver) -> ScenarioReport {
        assert!(
            !self.run.finished,
            "ScenarioEngine::run consumed the timeline already; build a new engine for a fresh run"
        );
        while self.run.slot < self.scenario.total_slots {
            self.step_slot(obs);
        }
        self.finish(obs)
    }

    /// Executes the scenario end to end without telemetry and returns the
    /// aggregated report.
    ///
    /// # Panics
    /// Panics when called a second time (see
    /// [`ScenarioEngine::run_with_observer`]).
    pub fn run(&mut self) -> ScenarioReport {
        self.run_with_observer(&mut ())
    }
}

/// Convenience: builds the engine and runs the scenario in one call.
pub fn run_scenario(scenario: Scenario, config: ScenarioConfig) -> Result<ScenarioReport, String> {
    Ok(ScenarioEngine::new(scenario, config)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SliceSpec;

    // Horizons below ~12 slots leave the episode cost budget so tight that
    // the proactive safety switch hands every slot to the baseline and π_θ
    // never trains; 16 matches the CI-scale built-ins.
    fn tiny_scenario() -> Scenario {
        Scenario::new("tiny", 16, 48)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs))
    }

    fn quick_config() -> ScenarioConfig {
        ScenarioConfig::default()
    }

    #[test]
    fn cell_seeds_are_distinct_stable_and_keyed_to_the_master() {
        let seeds: Vec<u64> = (0..64).map(|i| derive_cell_seed(0, i)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b, "cell seeds must be pairwise distinct");
            }
        }
        // Stability pins: the derivation is part of the fleet determinism
        // contract — changing it invalidates every committed fleet trace.
        assert_eq!(derive_cell_seed(0, 0), 16294208416658607535);
        assert_eq!(derive_cell_seed(7, 3), 7862637804313477842);
        assert_ne!(derive_cell_seed(0, 0), derive_cell_seed(1, 0));
        let config = ScenarioConfig {
            seed: 42,
            ..ScenarioConfig::default()
        };
        let cell = config.for_cell(5);
        assert_eq!(cell.seed, derive_cell_seed(42, 5));
        assert_eq!(cell.pretrain_episodes, config.pretrain_episodes);
        assert_eq!(cell.coordination, config.coordination);
    }

    #[test]
    fn steady_run_produces_complete_metrics() {
        let report = run_scenario(tiny_scenario(), quick_config()).unwrap();
        assert_eq!(report.total_slots, 48);
        assert_eq!(report.slice_slots, 96);
        assert_eq!(report.peak_concurrent_slices, 2);
        // 48 slots / 16-slot horizon = 3 episodes per slice.
        assert_eq!(report.slice_episodes, 6);
        assert!(!report.has_non_finite());
        assert!(report.avg_coordination_rounds >= 1.0);
        assert_eq!(report.slices.len(), 2);
        for s in &report.slices {
            assert_eq!(s.episodes, 3);
            assert!(s.policy_updates > 0, "every slice must train online");
            assert!(s.avg_usage_percent > 0.0);
        }
    }

    #[test]
    fn fixed_seed_runs_are_deterministic() {
        let scenario = tiny_scenario()
            .at(
                4,
                ScenarioEvent::TrafficBurst {
                    slice: 0,
                    scale: 1.6,
                    duration_slots: 4,
                },
            )
            .at(
                8,
                ScenarioEvent::DomainFault {
                    domain: DomainKind::Transport,
                    capacity_scale: 0.6,
                    duration_slots: 4,
                },
            );
        let a = run_scenario(scenario.clone(), quick_config()).unwrap();
        let b = run_scenario(scenario, quick_config()).unwrap();
        assert!(a.deterministic_fields_eq(&b));
        let c = run_scenario(
            tiny_scenario(),
            ScenarioConfig {
                seed: 9,
                ..quick_config()
            },
        )
        .unwrap();
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn admission_and_teardown_flow_through_the_report() {
        let scenario = Scenario::new("churn", 16, 64)
            .with_capacity(2.0)
            .slice(SliceSpec::new(SliceKind::Mar))
            .at(
                16,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Rdc),
                },
            )
            .at(48, ScenarioEvent::TeardownSlice { slice: 0 });
        let report = run_scenario(scenario, quick_config()).unwrap();
        assert_eq!(report.slices.len(), 2);
        let initial = &report.slices[0];
        let admitted = &report.slices[1];
        assert_eq!(initial.torn_down_at_slot, Some(48));
        assert_eq!(admitted.admitted_at_slot, 16);
        assert!(admitted.episodes >= 2);
        assert!(
            admitted.policy_updates > 0,
            "the admitted slice must train online"
        );
        assert_eq!(report.peak_concurrent_slices, 2);
        assert_eq!(report.events_applied, 2);
    }

    #[test]
    fn admission_is_denied_when_the_infrastructure_is_full() {
        // Capacity 1.0, three greedy slices enforced -> a fourth cannot fit.
        let scenario = Scenario::new("full-house", 6, 12)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs))
            .slice(SliceSpec::new(SliceKind::Rdc))
            .at(
                4,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Mar),
                },
            );
        let config = ScenarioConfig {
            admission: AdmissionConfig {
                estimated_share: 0.9,
                headroom: 0.0,
                ..Default::default()
            },
            ..quick_config()
        };
        let report = run_scenario(scenario, config).unwrap();
        assert_eq!(report.admissions_denied, 1);
        assert_eq!(report.slices.len(), 3);
        assert_eq!(report.peak_concurrent_slices, 3);
    }

    #[test]
    fn same_slot_admission_burst_cannot_over_admit_pledged_capacity() {
        // Regression test for the flash-crowd over-admission bug: at slot 0
        // nothing is enforced yet, so every one of three same-slot
        // admissions used to see the full 1.0 residual and all three were
        // granted on top of the initial slice — four pledges of 0.4 against
        // capacity that only fits two slices. With the reservation fix the
        // initial deployment and earlier grants are pledged, so exactly one
        // admission fits and two are denied.
        let scenario = Scenario::new("flash-admissions", 6, 12)
            .slice(SliceSpec::new(SliceKind::Mar))
            .at(
                0,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Mar),
                },
            )
            .at(
                0,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Hvs),
                },
            )
            .at(
                0,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Rdc),
                },
            );
        let config = ScenarioConfig {
            admission: AdmissionConfig {
                estimated_share: 0.4,
                headroom: 0.0,
                ..Default::default()
            },
            ..quick_config()
        };
        let report = run_scenario(scenario, config).unwrap();
        assert_eq!(
            report.admissions_denied, 2,
            "only one of the three same-slot admissions fits"
        );
        assert_eq!(report.peak_concurrent_slices, 2);
        // Ids: initial 0, granted 1; the denials burn ids 2 and 3.
        let ids: Vec<u32> = report.slices.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(report.events_applied, 1);
    }

    #[test]
    fn same_slot_restore_teardown_and_readmission_do_not_cross_wires() {
        // A burst on slice 1 ends (restore due) at slot 6; slice 1 is torn
        // down at slot 6 too, and a replacement is admitted in the same
        // slot. Order inside the slot is restores → events, so the restore
        // fires against slice 1 while it is still active; the newcomer must
        // come up at its own default traffic scale, not inherit the burst
        // or its rollback.
        let scenario = Scenario::new("restore-teardown-race", 6, 18)
            .with_capacity(2.0)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs))
            .at(
                2,
                ScenarioEvent::TrafficBurst {
                    slice: 1,
                    scale: 2.5,
                    duration_slots: 4,
                },
            )
            .at(6, ScenarioEvent::TeardownSlice { slice: 1 })
            .at(
                6,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Hvs),
                },
            );
        let mut engine = ScenarioEngine::new(scenario, quick_config()).unwrap();
        let report = engine.run();
        assert_eq!(report.events_applied, 3);
        assert_eq!(report.admissions_denied, 0);
        let orch = engine.orchestrator();
        // Ids never recycle: the replacement is slice 2, not a reborn 1.
        assert_eq!(orch.slice_ids().to_vec(), vec![SliceId(0), SliceId(2)]);
        assert!(!orch.domains().has_slice(SliceId(1)));
        // Neither survivor carries the burst scale or a stray rollback.
        assert_eq!(orch.env().envs()[0].traffic_scale(), 1.0);
        assert_eq!(orch.env().envs()[1].traffic_scale(), 1.0);
        assert!(
            engine.run.restores.is_empty(),
            "no restore may stay pending"
        );

        // Variant: the slice dies *before* its burst expires. The orphaned
        // restore must be skipped — in particular it must not resurrect
        // state onto the slice admitted at the restore's due slot.
        let scenario = Scenario::new("orphaned-restore", 6, 18)
            .with_capacity(2.0)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs))
            .at(
                2,
                ScenarioEvent::TrafficBurst {
                    slice: 1,
                    scale: 2.5,
                    duration_slots: 6,
                },
            )
            .at(4, ScenarioEvent::TeardownSlice { slice: 1 })
            .at(
                8,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Hvs),
                },
            );
        let mut engine = ScenarioEngine::new(scenario, quick_config()).unwrap();
        engine.run_until(9, &mut ());
        let orch = engine.orchestrator();
        assert_eq!(orch.slice_ids().to_vec(), vec![SliceId(0), SliceId(2)]);
        assert_eq!(
            orch.env().envs()[1].traffic_scale(),
            1.0,
            "the orphaned restore must not apply to the newly admitted slice"
        );
        assert!(engine.run.restores.is_empty());
    }

    #[test]
    fn migrated_slices_carry_their_pending_burst_restores() {
        // A burst on slice 1 runs over slots 2..10; the slice migrates at
        // slot 6 — mid-burst — into another engine. The pending restore
        // must travel with it: the new cell rolls the scale back when the
        // burst expires, and the old cell keeps no orphaned entry. Without
        // the transfer the "transient" burst would become permanent in the
        // slice's new home.
        let source_scenario = Scenario::new("burst-migration-src", 6, 18)
            .with_capacity(2.0)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs))
            .at(
                2,
                ScenarioEvent::TrafficBurst {
                    slice: 1,
                    scale: 2.5,
                    duration_slots: 8,
                },
            );
        let target_scenario = Scenario::new("burst-migration-dst", 6, 18)
            .with_capacity(2.0)
            .slice(SliceSpec::new(SliceKind::Mar));
        let mut source = ScenarioEngine::new(source_scenario, quick_config()).unwrap();
        let mut target = ScenarioEngine::new(
            target_scenario,
            ScenarioConfig {
                seed: 1,
                ..quick_config()
            },
        )
        .unwrap();
        source.run_until(6, &mut ());
        target.run_until(6, &mut ());

        let migration = source.extract_slice(1, 6).unwrap();
        assert_eq!(migration.traffic_restores.len(), 1);
        assert_eq!(migration.traffic_restores[0].due_slot, 10);
        assert_eq!(migration.traffic_restores[0].previous, 1.0);
        assert!(
            source.run.restores.is_empty(),
            "the departed slice's restore must not linger in the source"
        );

        let id = target.inject_slice(migration, 6).unwrap();
        let index = target.orchestrator().index_of(id).unwrap();
        assert_eq!(
            target.orchestrator().env().envs()[index].traffic_scale(),
            2.5,
            "the slice arrives still mid-burst"
        );
        target.run_until(11, &mut ());
        let index = target.orchestrator().index_of(id).unwrap();
        assert_eq!(
            target.orchestrator().env().envs()[index].traffic_scale(),
            1.0,
            "the burst must expire on schedule in the slice's new home"
        );
    }

    #[test]
    fn pending_admissions_reserve_capacity_until_first_enforcement() {
        // force_admit and inject_slice pledge capacity immediately: a
        // second same-boundary grant sees the first one's estimated share
        // reserved, and the reservation clears once the slices enforce in
        // an orchestration round.
        let scenario =
            Scenario::new("pending-reservations", 6, 12).slice(SliceSpec::new(SliceKind::Mar));
        let config = ScenarioConfig {
            admission: AdmissionConfig {
                estimated_share: 0.4,
                headroom: 0.0,
                ..Default::default()
            },
            ..quick_config()
        };
        let mut engine = ScenarioEngine::new(scenario, config).unwrap();
        // The initial slice is itself pending until slot 0's round.
        assert_eq!(engine.pending_admissions(), 1);
        // Residual is the full 1.0 (nothing enforced); the initial pledge
        // makes the check require 0.8, which still fits.
        assert!(engine.check_admission().is_ok());
        engine.force_admit(&SliceSpec::new(SliceKind::Hvs), 0);
        assert_eq!(engine.pending_admissions(), 2);
        // A further same-boundary grant would need 1.2 of a 1.0 residual.
        assert!(engine.check_admission().is_err());
        // The reservation survives a checkpoint taken at the boundary —
        // the elastic runner admits between slots, so dropping it on
        // restore would re-open the over-admission hole.
        let json = serde_json::to_string(&engine).unwrap();
        let mut restored: ScenarioEngine = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.pending_admissions(), 2);
        assert!(restored.check_admission().is_err());
        // One executed slot enforces the newcomers; the reservation clears
        // and the check is against real residual capacity again.
        restored.step_slot(&mut ());
        assert_eq!(restored.pending_admissions(), 0);
        engine.step_slot(&mut ());
        assert_eq!(engine.pending_admissions(), 0);
    }

    #[test]
    fn events_on_inactive_slices_are_skipped_not_fatal() {
        // Ids must now be statically assignable (validation rejects ids no
        // run could ever assign), so inactivity comes from a teardown: the
        // three later events target a slice that is already gone.
        let scenario = tiny_scenario()
            .at(2, ScenarioEvent::TeardownSlice { slice: 1 })
            .at(
                3,
                ScenarioEvent::SetTrafficScale {
                    slice: 1,
                    scale: 2.0,
                },
            )
            .at(
                4,
                ScenarioEvent::RenegotiateSla {
                    slice: 1,
                    cost_threshold: 0.2,
                },
            )
            .at(5, ScenarioEvent::TeardownSlice { slice: 1 });
        let report = run_scenario(scenario, quick_config()).unwrap();
        assert_eq!(report.events_skipped, 3);
        assert_eq!(report.events_applied, 1);
    }

    #[test]
    fn invalid_scenarios_are_rejected_at_construction() {
        let invalid = Scenario::new("empty", 6, 12); // no initial slices
        assert!(ScenarioEngine::new(invalid, quick_config()).is_err());
        // A bad admission config is an Err too, not a panic.
        let bad_admission = ScenarioConfig {
            admission: AdmissionConfig {
                estimated_share: 0.1,
                headroom: 2.0,
                ..Default::default()
            },
            ..quick_config()
        };
        assert!(ScenarioEngine::new(tiny_scenario(), bad_admission)
            .unwrap_err()
            .contains("headroom"));
    }

    #[test]
    fn trace_profile_swap_takes_effect_from_the_next_episode() {
        let scenario = Scenario::new("profile-swap", 8, 24)
            .slice(SliceSpec::new(SliceKind::Mar))
            .at(
                2,
                ScenarioEvent::SetTraceProfile {
                    slice: 0,
                    profile: onslicing_traffic::DiurnalTraceConfig::mar_default()
                        .with_peak_rate(50.0),
                },
            );
        let mut engine = ScenarioEngine::new(scenario, quick_config()).unwrap();
        engine.run();
        // Episodes reset at slots 8 and 16, regenerating from the new
        // profile; the final trace peaks at the swapped-in rate.
        let trace = engine.orchestrator().env().envs()[0].trace();
        assert!((trace.peak_rate() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn denied_admissions_still_consume_their_scripted_slice_id() {
        // Capacity 1.0, three slices: the admission at slot 4 is denied, so
        // id 3 must be burned and the next free id is 4 — later scripted
        // events keep targeting the slices the file author numbered.
        let scenario = Scenario::new("id-stability", 6, 12)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs))
            .slice(SliceSpec::new(SliceKind::Rdc))
            .at(
                4,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Mar),
                },
            );
        let config = ScenarioConfig {
            admission: AdmissionConfig {
                estimated_share: 0.9,
                headroom: 0.0,
                ..Default::default()
            },
            ..quick_config()
        };
        let mut engine = ScenarioEngine::new(scenario, config).unwrap();
        let report = engine.run();
        assert_eq!(report.admissions_denied, 1);
        assert_eq!(engine.orchestrator_mut().reserve_slice_id(), SliceId(4));
    }

    #[test]
    fn teardown_frees_capacity_for_a_later_admission_and_ids_never_recycle() {
        // Full house at slot 0 -> the slot-2 admission is denied (three
        // coordinated slices leave well under a 0.4 residual), burning
        // id 3. Tearing slices 0 and 1 down at slot 4 frees their shares,
        // so the slot-8 admission is granted and receives the next fresh
        // id (4) — torn-down and denied ids are never handed out again.
        let scenario = Scenario::new("readmission", 6, 18)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs))
            .slice(SliceSpec::new(SliceKind::Rdc))
            .at(
                2,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Mar),
                },
            )
            .at(4, ScenarioEvent::TeardownSlice { slice: 0 })
            .at(4, ScenarioEvent::TeardownSlice { slice: 1 })
            .at(
                8,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Hvs),
                },
            );
        let config = ScenarioConfig {
            admission: AdmissionConfig {
                estimated_share: 0.4,
                headroom: 0.0,
                ..Default::default()
            },
            ..quick_config()
        };
        let mut engine = ScenarioEngine::new(scenario, config).unwrap();
        let report = engine.run();
        assert_eq!(report.admissions_denied, 1);
        assert_eq!(report.events_applied, 3); // two teardowns + granted admission
        let ids: Vec<u32> = report.slices.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 4], "id 3 stays burned by the denial");
        let readmitted = &report.slices[3];
        assert_eq!(readmitted.admitted_at_slot, 8);
        assert!(readmitted.episodes > 0);
        assert!(engine.orchestrator().domains().has_slice(SliceId(4)));
        assert!(!engine.orchestrator().domains().has_slice(SliceId(0)));
    }

    #[test]
    fn burst_restore_yields_to_a_newer_permanent_regime() {
        // A burst (slots 4..8) is overridden at slot 6 by a permanent
        // regime shift; the burst's expiry must not roll that shift back.
        let scenario = Scenario::new("burst-vs-regime", 16, 16)
            .slice(SliceSpec::new(SliceKind::Mar))
            .at(
                4,
                ScenarioEvent::TrafficBurst {
                    slice: 0,
                    scale: 2.0,
                    duration_slots: 4,
                },
            )
            .at(
                6,
                ScenarioEvent::SetTrafficScale {
                    slice: 0,
                    scale: 1.3,
                },
            );
        let mut engine = ScenarioEngine::new(scenario, quick_config()).unwrap();
        engine.run();
        assert_eq!(engine.orchestrator().env().envs()[0].traffic_scale(), 1.3);
    }

    #[test]
    fn nested_domain_faults_unwind_to_the_outer_fault() {
        // A long transport fault (slots 0..24, beyond the scenario end)
        // contains a short deeper fault (slots 4..8): when the inner fault
        // heals it must restore the *outer* degradation, not full health.
        let scenario = Scenario::new("nested-faults", 16, 16)
            .slice(SliceSpec::new(SliceKind::Mar))
            .at(
                0,
                ScenarioEvent::DomainFault {
                    domain: DomainKind::Transport,
                    capacity_scale: 0.5,
                    duration_slots: 24,
                },
            )
            .at(
                4,
                ScenarioEvent::DomainFault {
                    domain: DomainKind::Transport,
                    capacity_scale: 0.3,
                    duration_slots: 4,
                },
            );
        let mut engine = ScenarioEngine::new(scenario, quick_config()).unwrap();
        engine.run();
        let transport = engine
            .orchestrator()
            .domains()
            .manager(DomainKind::Transport);
        assert_eq!(transport.capacity_scale(), 0.5);
    }

    #[test]
    #[should_panic(expected = "consumed the timeline already")]
    fn running_an_engine_twice_is_rejected() {
        let mut engine = ScenarioEngine::new(tiny_scenario(), quick_config()).unwrap();
        engine.run();
        engine.run();
    }

    #[test]
    fn teardown_mid_run_releases_capacity_and_stops_the_slice() {
        let scenario = Scenario::new("release", 6, 12)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs))
            .at(6, ScenarioEvent::TeardownSlice { slice: 1 });
        let mut engine = ScenarioEngine::new(scenario, quick_config()).unwrap();
        let report = engine.run();
        let orch = engine.orchestrator();
        assert_eq!(orch.num_slices(), 1);
        assert!(!orch.domains().has_slice(SliceId(1)));
        for m in orch.domains().managers() {
            assert_eq!(m.num_slices(), 1);
        }
        // The survivor keeps running to the end; the torn-down slice's
        // report stops at slot 6.
        assert_eq!(report.slices[1].torn_down_at_slot, Some(6));
        assert_eq!(report.slices[0].torn_down_at_slot, None);
        assert_eq!(report.slice_slots, 2 * 6 + 6);
    }

    /// Observer that records every sample and episode end.
    #[derive(Default)]
    struct Recorder {
        samples: Vec<SlotSample>,
        episodes: Vec<EpisodeEndEvent>,
    }

    impl SlotObserver for Recorder {
        fn on_slot(&mut self, samples: &[SlotSample]) {
            self.samples.extend_from_slice(samples);
        }
        fn on_episode_end(&mut self, event: &EpisodeEndEvent) {
            self.episodes.push(*event);
        }
    }

    #[test]
    fn observer_sees_every_slice_slot_and_episode() {
        let mut engine = ScenarioEngine::new(tiny_scenario(), quick_config()).unwrap();
        let mut rec = Recorder::default();
        let report = engine.run_with_observer(&mut rec);
        assert_eq!(rec.samples.len(), report.slice_slots);
        assert_eq!(rec.episodes.len(), report.slice_episodes);
        assert!(rec.samples.iter().all(|s| s.kpi.cost >= 0.0));
        assert!(rec.samples.iter().all(|s| s.lambda >= 0.0));
        // The report's cheap slot-level folds agree with the full
        // per-sample telemetry stream.
        let mean_cost =
            rec.samples.iter().map(|s| s.kpi.cost).sum::<f64>() / rec.samples.len() as f64;
        assert!((report.avg_slot_cost - mean_cost).abs() < 1e-9);
        let mean_usage = rec
            .samples
            .iter()
            .map(|s| s.kpi.resource_usage_percent())
            .sum::<f64>()
            / rec.samples.len() as f64;
        assert!((report.avg_slot_usage_percent - mean_usage).abs() < 1e-9);
        // Slots arrive in order; samples of one slot share the slot index.
        assert!(rec.samples.windows(2).all(|w| w[0].slot <= w[1].slot));
    }

    #[test]
    fn stepwise_execution_equals_one_shot_execution() {
        let scenario = tiny_scenario().at(
            4,
            ScenarioEvent::TrafficBurst {
                slice: 0,
                scale: 1.5,
                duration_slots: 4,
            },
        );
        let one_shot = run_scenario(scenario.clone(), quick_config()).unwrap();
        let mut engine = ScenarioEngine::new(scenario, quick_config()).unwrap();
        engine.run_until(10, &mut ());
        assert_eq!(engine.current_slot(), 10);
        assert!(!engine.is_finished());
        let stepwise = engine.run_with_observer(&mut ());
        assert!(one_shot.deterministic_fields_eq(&stepwise));
    }

    #[test]
    fn serialized_engine_resumes_mid_scenario_bit_for_bit() {
        let scenario = tiny_scenario().at(
            20,
            ScenarioEvent::DomainFault {
                domain: DomainKind::Transport,
                capacity_scale: 0.6,
                duration_slots: 8,
            },
        );
        // Reference: uninterrupted run with full telemetry.
        let mut reference = ScenarioEngine::new(scenario.clone(), quick_config()).unwrap();
        let mut ref_rec = Recorder::default();
        let ref_report = reference.run_with_observer(&mut ref_rec);

        // Checkpointed run: execute 17 slots (mid-episode, mid-fault window),
        // serialize, restore into a fresh engine, run the tail.
        let mut engine = ScenarioEngine::new(scenario, quick_config()).unwrap();
        let mut prefix = Recorder::default();
        engine.run_until(17, &mut prefix);
        let json = serde_json::to_string(&engine).unwrap();
        drop(engine);
        let mut restored: ScenarioEngine = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.current_slot(), 17);
        let mut suffix = Recorder::default();
        let resumed_report = restored.run_with_observer(&mut suffix);

        assert!(ref_report.deterministic_fields_eq(&resumed_report));
        let replayed: Vec<SlotSample> = prefix
            .samples
            .iter()
            .chain(suffix.samples.iter())
            .copied()
            .collect();
        assert_eq!(replayed, ref_rec.samples);
        let episodes: Vec<EpisodeEndEvent> = prefix
            .episodes
            .iter()
            .chain(suffix.episodes.iter())
            .copied()
            .collect();
        assert_eq!(episodes, ref_rec.episodes);
    }

    #[test]
    fn injected_events_match_scripted_events_bit_for_bit() {
        // Reference: the timeline schedules an admission, a renegotiation
        // and a teardown. Live run: the same events are injected at the
        // same slot boundaries of an event-free scenario. Both observers
        // and both final reports must agree exactly.
        let spec = SliceSpec::new(SliceKind::Rdc);
        let scripted_scenario = tiny_scenario()
            .at(1, ScenarioEvent::AdmitSlice { slice: spec })
            .at(10, ScenarioEvent::AdmitSlice { slice: spec })
            .at(
                20,
                ScenarioEvent::RenegotiateSla {
                    slice: 0,
                    cost_threshold: 0.4,
                },
            )
            .at(30, ScenarioEvent::TeardownSlice { slice: 1 });
        let mut scripted = ScenarioEngine::new(scripted_scenario, quick_config()).unwrap();
        let mut scripted_rec = Recorder::default();
        let scripted_report = scripted.run_with_observer(&mut scripted_rec);

        let mut live = ScenarioEngine::new(tiny_scenario(), quick_config()).unwrap();
        let mut live_rec = Recorder::default();
        live.run_until(1, &mut live_rec);
        assert_eq!(
            live.inject_event(&ScenarioEvent::AdmitSlice { slice: spec }, &mut live_rec)
                .unwrap(),
            LiveEventOutcome::Applied
        );
        live.run_until(10, &mut live_rec);
        // The deployment is near capacity by now: the same admission that
        // the scripted run denies at slot 10 must be denied live too.
        assert_eq!(
            live.inject_event(&ScenarioEvent::AdmitSlice { slice: spec }, &mut live_rec)
                .unwrap(),
            LiveEventOutcome::Denied
        );
        live.run_until(20, &mut live_rec);
        assert_eq!(
            live.inject_event(
                &ScenarioEvent::RenegotiateSla {
                    slice: 0,
                    cost_threshold: 0.4,
                },
                &mut live_rec,
            )
            .unwrap(),
            LiveEventOutcome::Applied
        );
        live.run_until(30, &mut live_rec);
        assert_eq!(
            live.inject_event(&ScenarioEvent::TeardownSlice { slice: 1 }, &mut live_rec)
                .unwrap(),
            LiveEventOutcome::Applied
        );
        let live_report = live.run_with_observer(&mut live_rec);

        assert!(scripted_report.deterministic_fields_eq(&live_report));
        assert_eq!(live_rec.samples, scripted_rec.samples);
        assert_eq!(live_rec.episodes, scripted_rec.episodes);
    }

    #[test]
    fn injected_admissions_respect_the_reservation_rule() {
        // A cell close to capacity: inject admissions at one boundary until
        // one is denied; the denial must be an outcome, not an error, and
        // the report counters advance like the scripted path's would.
        let mut engine = ScenarioEngine::new(tiny_scenario(), quick_config()).unwrap();
        engine.run_until(4, &mut ());
        let spec = SliceSpec::new(SliceKind::Hvs);
        let mut granted = 0;
        let mut denied = 0;
        for _ in 0..64 {
            match engine.inject_event(&ScenarioEvent::AdmitSlice { slice: spec }, &mut ()) {
                Ok(LiveEventOutcome::Applied) => granted += 1,
                Ok(LiveEventOutcome::Denied) => {
                    denied += 1;
                    break;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(denied > 0, "the reservation rule must eventually deny");
        assert_eq!(engine.pending_admissions(), granted);
        // The engine keeps running fine with the granted slices aboard.
        engine.run_until(8, &mut ());
        assert_eq!(engine.pending_admissions(), 0);
    }

    #[test]
    fn injected_teardown_of_unknown_slice_is_skipped() {
        let mut engine = ScenarioEngine::new(tiny_scenario(), quick_config()).unwrap();
        engine.run_until(2, &mut ());
        assert_eq!(
            engine
                .inject_event(&ScenarioEvent::TeardownSlice { slice: 99 }, &mut ())
                .unwrap(),
            LiveEventOutcome::Skipped
        );
    }

    #[test]
    fn invalid_or_posthumous_injections_are_errors() {
        let mut engine = ScenarioEngine::new(tiny_scenario(), quick_config()).unwrap();
        let invalid = ScenarioEvent::SetTrafficScale {
            slice: 0,
            scale: -1.0,
        };
        assert!(engine.inject_event(&invalid, &mut ()).is_err());
        engine.run();
        let valid = ScenarioEvent::TeardownSlice { slice: 0 };
        assert!(engine
            .inject_event(&valid, &mut ())
            .unwrap_err()
            .contains("finished"));
    }
}
