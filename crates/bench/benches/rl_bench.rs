//! Micro-benchmarks of the learning substrate: one PPO update over a 96-slot
//! episode, one behavior-cloning epoch, and one cost-value-estimator fit.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use onslicing_rl::{
    behavior_clone, BcConfig, CostEstimatorConfig, CostToGoSample, CostValueEstimator,
    Demonstration, PpoAgent, PpoConfig, RolloutBuffer, Transition,
};
use onslicing_slices::{ACTION_DIM, STATE_DIM};

fn filled_buffer(agent: &PpoAgent, rng: &mut ChaCha8Rng) -> RolloutBuffer {
    let mut buffer = RolloutBuffer::new();
    let state = vec![0.4; STATE_DIM];
    for i in 0..96 {
        let sample = agent.act(&state, rng);
        buffer.push(Transition {
            state: state.clone(),
            raw_action: sample.raw_action.clone(),
            action: sample.action.clone(),
            log_prob: sample.log_prob,
            reward: -0.3,
            cost: 0.01,
            value: agent.value(&state),
            done: i == 95,
        });
    }
    buffer.finish_episode(0.0, 0.99, 0.95);
    buffer
}

fn bench_ppo_update(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let config = PpoConfig {
        epochs: 4,
        ..PpoConfig::default()
    };
    let mut agent = PpoAgent::new_small(STATE_DIM, ACTION_DIM, config, &mut rng);
    let buffer = filled_buffer(&agent, &mut rng);
    c.bench_function("ppo_update_96_transitions", |b| {
        b.iter(|| std::hint::black_box(agent.update(&buffer, &mut rng)))
    });
}

fn bench_behavior_cloning(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let config = PpoConfig::default();
    let mut agent = PpoAgent::new_small(STATE_DIM, ACTION_DIM, config, &mut rng);
    let demos: Vec<Demonstration> = (0..96)
        .map(|i| Demonstration {
            state: vec![i as f64 / 96.0; STATE_DIM],
            action: vec![0.3; ACTION_DIM],
        })
        .collect();
    let bc = BcConfig {
        epochs: 1,
        ..BcConfig::default()
    };
    c.bench_function("behavior_cloning_one_epoch_96_demos", |b| {
        b.iter(|| std::hint::black_box(behavior_clone(agent.policy_mut(), &demos, &bc, &mut rng)))
    });
}

fn bench_cost_estimator(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let dataset: Vec<CostToGoSample> = (0..96)
        .map(|i| CostToGoSample {
            state: vec![i as f64 / 96.0; STATE_DIM],
            cost_to_go: 0.5,
        })
        .collect();
    let mut est = CostValueEstimator::new(
        STATE_DIM,
        CostEstimatorConfig {
            epochs: 1,
            ..CostEstimatorConfig::default()
        },
        &mut rng,
    );
    c.bench_function("cost_estimator_fit_one_epoch", |b| {
        b.iter(|| std::hint::black_box(est.fit(&dataset, &mut rng)))
    });
    let state = vec![0.4; STATE_DIM];
    c.bench_function("cost_estimator_predict", |b| {
        b.iter(|| std::hint::black_box(est.predict(&state, &mut rng)))
    });
}

criterion_group!(
    benches,
    bench_ppo_update,
    bench_behavior_cloning,
    bench_cost_estimator
);
criterion_main!(benches);
