//! Micro-benchmarks of the end-to-end network simulator: one configuration
//! slot per slice kind, and a full 96-slot episode.

use criterion::{criterion_group, criterion_main, Criterion};

use onslicing_netsim::{NetworkConfig, NetworkSimulator};
use onslicing_slices::{Action, Sla, SliceKind};

fn bench_slot(c: &mut Criterion) {
    let mut sim = NetworkSimulator::new(NetworkConfig::testbed_default());
    let action = Action::uniform(0.3);
    for kind in SliceKind::ALL {
        let sla = Sla::for_kind(kind);
        let rate = kind.default_peak_users_per_second();
        c.bench_function(&format!("simulator_slot_{}", kind.name()), |b| {
            b.iter(|| std::hint::black_box(sim.step_slice(kind, &sla, &action, rate)))
        });
    }
}

fn bench_episode(c: &mut Criterion) {
    let mut sim = NetworkSimulator::new(NetworkConfig::testbed_default());
    let action = Action::uniform(0.3);
    let sla = Sla::for_kind(SliceKind::Mar);
    c.bench_function("simulator_96_slot_episode_mar", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for _ in 0..96 {
                total += sim.step_slice(SliceKind::Mar, &sla, &action, 5.0).cost;
            }
            std::hint::black_box(total)
        })
    });
}

criterion_group!(benches, bench_slot, bench_episode);
criterion_main!(benches);
