//! End-to-end benchmarks of the orchestration loop: one coordinated slot and
//! one short episode for the OnSlicing agent and for the projection-based
//! OnRL comparator (the ablation axis DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, Criterion};

use onslicing_bench::{build_deployment, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode};

fn scale() -> RunScale {
    RunScale {
        horizon: 12,
        pretrain_episodes: 1,
        online_epochs: 1,
        episodes_per_epoch: 1,
        eval_episodes: 1,
    }
}

fn bench_slot(c: &mut Criterion) {
    let mut orch = build_deployment(
        AgentConfig::onslicing(),
        CoordinationMode::default(),
        scale(),
        0,
    );
    orch.offline_pretrain_all(1);
    orch.env_mut().reset_all();
    c.bench_function("orchestrated_slot_onslicing", |b| {
        b.iter(|| std::hint::black_box(orch.run_slot(true)))
    });
}

fn bench_episode_variants(c: &mut Criterion) {
    let variants = [
        (
            "episode_onslicing_modifier",
            AgentConfig::onslicing(),
            CoordinationMode::default(),
        ),
        (
            "episode_onslicing_projection",
            AgentConfig::onslicing(),
            CoordinationMode::Projection,
        ),
        (
            "episode_onrl",
            AgentConfig::onrl(),
            CoordinationMode::Projection,
        ),
    ];
    for (name, cfg, mode) in variants {
        let mut orch = build_deployment(cfg, mode, scale(), 1);
        if cfg.enable_imitation {
            orch.offline_pretrain_all(1);
        }
        c.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(orch.run_episode(true)))
        });
    }
}

criterion_group!(benches, bench_slot, bench_episode_variants);
criterion_main!(benches);
