//! Micro-benchmarks of the neural-network substrate: forward and
//! forward+backward passes of the paper-sized (128×64×32) policy trunk and
//! of the Bayesian cost-value estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use onslicing_nn::{Activation, BayesianMlp, GaussianPolicy, Mlp};
use onslicing_slices::{ACTION_DIM, STATE_DIM};

fn bench_mlp(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut net = Mlp::onslicing_default(STATE_DIM, ACTION_DIM, Activation::Sigmoid, &mut rng);
    let x = vec![0.3; STATE_DIM];
    c.bench_function("mlp_forward_128x64x32", |b| {
        b.iter(|| std::hint::black_box(net.forward(&x)))
    });
    c.bench_function("mlp_forward_backward_128x64x32", |b| {
        b.iter(|| {
            net.zero_grad();
            let y = net.forward_train(&x);
            let grad = vec![1.0 / y.len() as f64; y.len()];
            std::hint::black_box(net.backward(&grad))
        })
    });
}

fn bench_policy_sample(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let policy = GaussianPolicy::new(STATE_DIM, ACTION_DIM, 0.1, &mut rng);
    let x = vec![0.3; STATE_DIM];
    c.bench_function("gaussian_policy_sample", |b| {
        b.iter(|| std::hint::black_box(policy.sample(&x, &mut rng)))
    });
}

fn bench_bayesian_predict(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut net = BayesianMlp::new(&[STATE_DIM, 64, 32, 1], &mut rng);
    let x = vec![0.3; STATE_DIM];
    c.bench_function("bayesian_predict_16_samples", |b| {
        b.iter(|| std::hint::black_box(net.predict(&x, 16, &mut rng)))
    });
}

criterion_group!(
    benches,
    bench_mlp,
    bench_policy_sample,
    bench_bayesian_predict
);
criterion_main!(benches);
