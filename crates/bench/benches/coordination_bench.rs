//! Micro-benchmarks of the distributed coordination machinery: one Eq. 14
//! dual update across all domains, one action modification, and a full
//! coordination round for 3 and 27 slices.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use onslicing_core::{ActionModifier, ModifierConfig};
use onslicing_domains::DomainSet;
use onslicing_slices::Action;

fn bench_dual_update(c: &mut Criterion) {
    let mut domains = DomainSet::testbed_default();
    let requests = vec![Action::uniform(0.5); 3];
    c.bench_function("domain_set_dual_update_3_slices", |b| {
        b.iter(|| std::hint::black_box(domains.update_coordination(requests.iter())))
    });
}

fn bench_modifier(c: &mut Criterion) {
    let modifier = ActionModifier::new(ModifierConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let action = Action::uniform(0.6);
    let betas = [0.2; 6];
    c.bench_function("action_modifier_single_action", |b| {
        b.iter(|| std::hint::black_box(modifier.modify(&action, &betas, &mut rng)))
    });
}

fn bench_coordination_round(c: &mut Criterion) {
    let modifier = ActionModifier::new(ModifierConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for num_slices in [3usize, 27] {
        let mut domains = DomainSet::testbed_default();
        let originals = vec![Action::uniform(0.6); num_slices];
        c.bench_function(&format!("coordination_round_{num_slices}_slices"), |b| {
            b.iter(|| {
                let betas = domains.update_coordination(originals.iter());
                let modified: Vec<Action> = originals
                    .iter()
                    .map(|a| modifier.modify(a, &betas, &mut rng))
                    .collect();
                std::hint::black_box(domains.is_feasible(modified.iter()))
            })
        });
    }
}

criterion_group!(
    benches,
    bench_dual_update,
    bench_modifier,
    bench_coordination_round
);
criterion_main!(benches);
