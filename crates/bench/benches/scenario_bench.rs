//! Benchmarks of the scenario engine: full scenario runs for the workload
//! extremes (`steady` vs `stress-many-slices`) and one orchestrated slot of
//! each live deployment. The `bench_scenario` binary emits the same
//! comparison as the machine-readable `BENCH_scenario.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use onslicing_scenario::{builtin, Scenario, ScenarioConfig, ScenarioEngine};

fn engine(scenario: Scenario) -> ScenarioEngine {
    ScenarioEngine::new(scenario, ScenarioConfig::default()).expect("built-ins are valid")
}

fn bench_scenario_runs(c: &mut Criterion) {
    for scenario in [builtin::steady(), builtin::stress_many_slices()] {
        let name = format!("scenario_run_{}", scenario.name);
        c.bench_function(&name, |b| {
            b.iter(|| {
                let mut e = engine(std::hint::black_box(scenario.clone()));
                std::hint::black_box(e.run())
            })
        });
    }
}

fn bench_scenario_slot(c: &mut Criterion) {
    for scenario in [builtin::steady(), builtin::stress_many_slices()] {
        let name = format!("scenario_slot_{}", scenario.name);
        let mut e = engine(scenario);
        c.bench_function(&name, |b| {
            b.iter(|| std::hint::black_box(e.orchestrator_mut().run_slot(true)))
        });
    }
}

criterion_group!(benches, bench_scenario_runs, bench_scenario_slot);
criterion_main!(benches);
