//! Hot-path benchmarks: the batched NN/PPO pipeline against the former
//! per-sample path, plus the N-slice orchestrator slot.
//!
//! The acceptance targets tracked across PRs (see `BENCH_hotpath.json`,
//! emitted by the `bench_hotpath` binary):
//!
//! * `mlp_forward_batch64` ≥ 3× faster per sample than
//!   `mlp_forward_per_sample_x64`;
//! * `ppo_minibatch_update_batched` ≥ 3× faster than
//!   `ppo_minibatch_update_per_sample`;
//! * orchestrator slot latency growing sub-linearly in the slice count on a
//!   multi-core host.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use onslicing_bench::hotpath::{
    batched_ppo, filled_buffer, hotpath_ppo_config, paper_actor_critic, scaled_orchestrator,
    NaiveMlp, PerSamplePpo,
};
use onslicing_nn::{Activation, BatchWorkspace, Matrix, Mlp};
use onslicing_slices::{ACTION_DIM, STATE_DIM};

const BATCH: usize = 64;

fn bench_forward(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let net = Mlp::onslicing_default(STATE_DIM, ACTION_DIM, Activation::Sigmoid, &mut rng);
    let naive = NaiveMlp::from_mlp(&net);
    let x = vec![0.3; STATE_DIM];
    c.bench_function("mlp_forward_per_sample_x64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += naive.forward(std::hint::black_box(&x))[0];
            }
            acc
        })
    });

    let mut batch = Matrix::zeros(BATCH, STATE_DIM);
    for r in 0..BATCH {
        batch.copy_row_from(r, &x);
    }
    let mut ws = BatchWorkspace::new();
    c.bench_function("mlp_forward_batch64", |b| {
        b.iter(|| {
            net.forward_batch(std::hint::black_box(&batch), &mut ws)
                .get(0, 0)
        })
    });
}

fn bench_ppo_update(c: &mut Criterion) {
    let (policy, critic) = paper_actor_critic(1);
    let buffer = filled_buffer(&policy, &critic, BATCH, 2);

    let mut per_sample = PerSamplePpo::new(&policy, &critic, hotpath_ppo_config());
    let mut batched = batched_ppo(&policy, &critic);
    let mut rng = ChaCha8Rng::seed_from_u64(3);

    c.bench_function("ppo_minibatch_update_per_sample", |b| {
        b.iter(|| per_sample.update(std::hint::black_box(&buffer)))
    });
    c.bench_function("ppo_minibatch_update_batched", |b| {
        b.iter(|| batched.update(std::hint::black_box(&buffer), &mut rng))
    });
}

fn bench_orchestrator_slot(c: &mut Criterion) {
    // One deterministic 24-slot episode per iteration: episode time / 24 is
    // the per-slot latency; sub-linear growth across the slice counts is the
    // parallel-decision-phase acceptance criterion (on a multi-core host).
    for num_slices in [3usize, 9, 18] {
        let mut orch = scaled_orchestrator(num_slices, 10 + num_slices as u64);
        c.bench_function(
            &format!("orchestrator_episode24_{num_slices}_slices"),
            |b| b.iter(|| orch.run_episode(false).avg_interactions),
        );
    }
}

criterion_group!(
    benches,
    bench_forward,
    bench_ppo_update,
    bench_orchestrator_slot
);
criterion_main!(benches);
