//! Shared fixtures for the hot-path benchmarks: the batched NN/PPO path
//! versus a faithful reconstruction of the former per-sample path.
//!
//! Used by both `benches/hotpath_bench.rs` (criterion) and the
//! `bench_hotpath` binary (which emits the machine-readable
//! `BENCH_hotpath.json` tracked across PRs).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use onslicing_core::{
    AgentConfig, CoordinationMode, DeploymentBuilder, MultiSliceEnvironment, OnSlicingAgent,
    Orchestrator, OrchestratorConfig, SliceEnvironment,
};
use onslicing_domains::DomainSet;
use onslicing_netsim::NetworkConfig;
use onslicing_nn::{Activation, Adam, GaussianPolicy, Matrix, Mlp};
use onslicing_rl::{PpoAgent, PpoConfig, RolloutBuffer, Transition};
use onslicing_slices::{Action, ActionDim, ResourceKind, Sla, SliceKind, ACTION_DIM, STATE_DIM};

/// The paper-sized actor/critic pair used by every hot-path comparison
/// (`onslicing_default` 128×64×32 trunks on the real state/action dims).
pub fn paper_actor_critic(seed: u64) -> (GaussianPolicy, Mlp) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let policy = GaussianPolicy::new(STATE_DIM, ACTION_DIM, 0.1, &mut rng);
    let critic = Mlp::onslicing_default(STATE_DIM, 1, Activation::Identity, &mut rng);
    (policy, critic)
}

/// Fills a rollout buffer with `n` single-episode transitions drawn from the
/// policy (the same shape a real 96-slot day produces).
pub fn filled_buffer(policy: &GaussianPolicy, critic: &Mlp, n: usize, seed: u64) -> RolloutBuffer {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut buffer = RolloutBuffer::new();
    for i in 0..n {
        let state: Vec<f64> = (0..STATE_DIM).map(|_| rng.gen::<f64>()).collect();
        let sample = policy.sample(&state, &mut rng);
        let value = critic.forward(&state)[0];
        buffer.push(Transition {
            state,
            raw_action: sample.raw_action.clone(),
            action: sample.action.clone(),
            log_prob: sample.log_prob,
            reward: -0.3 + 0.1 * rng.gen::<f64>(),
            cost: 0.01,
            value,
            done: i + 1 == n,
        });
    }
    buffer.finish_episode(0.0, 0.99, 0.95);
    buffer
}

/// One dense layer with the **seed repository's** kernels: serial-accumulator
/// `matvec` with the `a == 0.0` / `v == 0.0` skip branches, a freshly
/// allocated `Vec` per product, and an allocated outer-product matrix per
/// backward call. This is the pre-PR hot path, reconstructed so
/// `BENCH_hotpath.json` tracks the batched rewrite against what the code
/// actually did before it.
struct NaiveLayer {
    weights: Matrix,
    bias: Vec<f64>,
    grad_weights: Matrix,
    grad_bias: Vec<f64>,
    activation: Activation,
    cached_input: Vec<f64>,
    cached_pre: Vec<f64>,
}

fn naive_matvec(m: &Matrix, v: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; m.rows()];
    for (o, i) in out.iter_mut().zip(0..m.rows()) {
        let mut acc = 0.0;
        for (a, b) in m.row(i).iter().zip(v.iter()) {
            acc += a * b;
        }
        *o = acc;
    }
    out
}

fn naive_t_matvec(m: &Matrix, v: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; m.cols()];
    for (i, &vi) in v.iter().enumerate() {
        if vi == 0.0 {
            continue;
        }
        for (o, a) in out.iter_mut().zip(m.row(i).iter()) {
            *o += a * vi;
        }
    }
    out
}

impl NaiveLayer {
    fn from_dense(layer: &onslicing_nn::Dense) -> Self {
        Self {
            weights: layer.weights().clone(),
            bias: layer.bias().to_vec(),
            grad_weights: Matrix::zeros(layer.out_dim(), layer.in_dim()),
            grad_bias: vec![0.0; layer.out_dim()],
            activation: layer.activation(),
            cached_input: Vec::new(),
            cached_pre: Vec::new(),
        }
    }

    fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut pre = naive_matvec(&self.weights, input);
        for (p, b) in pre.iter_mut().zip(self.bias.iter()) {
            *p += b;
        }
        pre.iter().map(|&x| self.activation.apply(x)).collect()
    }

    fn forward_train(&mut self, input: &[f64]) -> Vec<f64> {
        let mut pre = naive_matvec(&self.weights, input);
        for (p, b) in pre.iter_mut().zip(self.bias.iter()) {
            *p += b;
        }
        let out = pre.iter().map(|&x| self.activation.apply(x)).collect();
        self.cached_input = input.to_vec();
        self.cached_pre = pre;
        out
    }

    fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        let delta: Vec<f64> = grad_output
            .iter()
            .zip(self.cached_pre.iter())
            .map(|(&g, &z)| g * self.activation.derivative(z))
            .collect();
        let gw = Matrix::outer(&delta, &self.cached_input);
        self.grad_weights.add_scaled_assign(&gw, 1.0);
        for (gb, d) in self.grad_bias.iter_mut().zip(delta.iter()) {
            *gb += d;
        }
        naive_t_matvec(&self.weights, &delta)
    }

    fn zero_grad(&mut self) {
        self.grad_weights.fill(0.0);
        for g in &mut self.grad_bias {
            *g = 0.0;
        }
    }

    fn param_grad_pairs(&mut self) -> Vec<(&mut f64, f64)> {
        let grads: Vec<f64> = self
            .grad_weights
            .data()
            .iter()
            .copied()
            .chain(self.grad_bias.iter().copied())
            .collect();
        self.weights
            .data_mut()
            .iter_mut()
            .chain(self.bias.iter_mut())
            .zip(grads)
            .collect()
    }
}

/// The seed's per-sample MLP (stack of [`NaiveLayer`]s).
pub struct NaiveMlp {
    layers: Vec<NaiveLayer>,
}

impl NaiveMlp {
    /// Snapshots an [`Mlp`]'s weights into the seed-kernel implementation.
    pub fn from_mlp(mlp: &Mlp) -> Self {
        Self {
            layers: mlp
                .layers_ref()
                .iter()
                .map(NaiveLayer::from_dense)
                .collect(),
        }
    }

    /// Per-sample inference forward (one allocation chain per layer).
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut x = input.to_vec();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x
    }

    fn forward_train(&mut self, input: &[f64]) -> Vec<f64> {
        let mut x = input.to_vec();
        for layer in &mut self.layers {
            x = layer.forward_train(&x);
        }
        x
    }

    fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        let mut g = grad_output.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.rows() * l.weights.cols() + l.bias.len())
            .sum()
    }

    fn param_grad_pairs(&mut self) -> Vec<(&mut f64, f64)> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            out.extend(layer.param_grad_pairs());
        }
        out
    }
}

/// The pre-batching PPO learner: the seed's sample-by-sample minibatch loops
/// over the seed's naive kernels. Kept as the baseline the criterion
/// comparison and `BENCH_hotpath.json` measure the batched path against.
pub struct PerSamplePpo {
    mean_net: NaiveMlp,
    critic: NaiveMlp,
    std: Vec<f64>,
    actor_opt: Adam,
    critic_opt: Adam,
    config: PpoConfig,
}

impl PerSamplePpo {
    /// Builds the per-sample learner from the same initial weights as the
    /// batched learner (fair head-to-head start).
    pub fn new(policy: &GaussianPolicy, critic: &Mlp, config: PpoConfig) -> Self {
        let mean_net = NaiveMlp::from_mlp(policy.mean_net());
        let critic = NaiveMlp::from_mlp(critic);
        // The std parameters train too, but their gradient cost is O(action
        // dim) on both paths; pinning them keeps the baseline simple without
        // skewing the comparison.
        let actor_opt = Adam::new(mean_net.num_parameters(), config.actor_lr);
        let critic_opt = Adam::new(critic.num_parameters(), config.critic_lr);
        Self {
            mean_net,
            critic,
            std: policy.std(),
            actor_opt,
            critic_opt,
            config,
        }
    }

    fn log_prob(&mut self, state: &[f64], raw_action: &[f64]) -> f64 {
        let mean = self.mean_net.forward(state);
        let mut lp = 0.0;
        for ((m, s), a) in mean.iter().zip(self.std.iter()).zip(raw_action.iter()) {
            let s = s.max(1e-9);
            let z = (a - m) / s;
            lp += -0.5 * z * z - s.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
        }
        lp
    }

    fn accumulate_log_prob_grad(&mut self, state: &[f64], raw_action: &[f64], weight: f64) {
        let mean = self.mean_net.forward_train(state);
        let mut grad_out = Vec::with_capacity(mean.len());
        for ((m, s), a) in mean.iter().zip(self.std.iter()).zip(raw_action.iter()) {
            let s = s.max(1e-9);
            grad_out.push(-weight * (a - m) / (s * s));
        }
        self.mean_net.backward(&grad_out);
    }

    /// One full PPO update (all epochs) with per-sample forward/backward
    /// passes — the former hot path, minus the shuffle (deterministic chunk
    /// order keeps the comparison reproducible).
    pub fn update(&mut self, buffer: &RolloutBuffer) {
        let (transitions, _advantages, returns) = buffer.ready_batch();
        let advantages = buffer.normalized_advantages();
        let n = transitions.len();
        if n == 0 {
            return;
        }
        let indices: Vec<usize> = (0..n).collect();
        for _epoch in 0..self.config.epochs {
            for chunk in indices.chunks(self.config.minibatch_size.max(1)) {
                self.mean_net.zero_grad();
                self.critic.zero_grad();
                let batch = chunk.len() as f64;
                for &i in chunk {
                    let t = &transitions[i];
                    let adv = advantages[i];
                    let new_log_prob = self.log_prob(&t.state, &t.raw_action);
                    let ratio = (new_log_prob - t.log_prob).exp();
                    let clip_lo = 1.0 - self.config.clip_epsilon;
                    let clip_hi = 1.0 + self.config.clip_epsilon;
                    let unclipped = ratio * adv;
                    let clipped_obj = ratio.clamp(clip_lo, clip_hi) * adv;
                    if unclipped <= clipped_obj + 1e-12 {
                        self.accumulate_log_prob_grad(&t.state, &t.raw_action, ratio * adv / batch);
                    }
                    let v = self.critic.forward_train(&t.state)[0];
                    let err = v - returns[i];
                    self.critic.backward(&[2.0 * err / batch]);
                }
                let pairs = self.mean_net.param_grad_pairs();
                self.actor_opt.step(pairs);
                let pairs = self.critic.param_grad_pairs();
                self.critic_opt.step(pairs);
            }
        }
    }
}

/// PPO hyper-parameters for the hot-path comparison: one epoch over one
/// 64-transition minibatch, so a single `update` call is exactly the "PPO
/// minibatch update" of the acceptance criteria.
///
/// Learning rates are zero: the Adam math still runs in full (identical
/// instruction stream), but the weights stay pinned, so every timed
/// iteration measures the *same* workload. With live learning rates the
/// policy drifts away from the behavior policy across the timing loop, the
/// clip fraction climbs, and the per-sample baseline — which skips the
/// gradient pass for clipped samples — gets progressively cheaper,
/// corrupting the comparison.
pub fn hotpath_ppo_config() -> PpoConfig {
    PpoConfig {
        epochs: 1,
        minibatch_size: 64,
        actor_lr: 0.0,
        critic_lr: 0.0,
        ..PpoConfig::default()
    }
}

/// The batched learner sharing the baseline's initial weights.
pub fn batched_ppo(policy: &GaussianPolicy, critic: &Mlp) -> PpoAgent {
    PpoAgent::from_parts(policy.clone(), critic.clone(), hotpath_ppo_config())
}

/// The per-slot inference workload of an `num_slices`-slice cell: one
/// paper-sized policy mean net (`STATE_DIM -> ACTION_DIM`) and one critic
/// (`STATE_DIM -> 1`) per slice, each with its own weights, plus one
/// observation row per slice. Shared by both sides of the
/// `fused_cell_slot` comparison so they evaluate the exact same networks
/// on the exact same states.
pub struct CellInferenceFixture {
    /// Per-slice policy mean networks (distinct weights, shared trunk).
    pub policies: Vec<Mlp>,
    /// Per-slice critics (distinct weights, shared trunk).
    pub critics: Vec<Mlp>,
    /// One observation row per slice.
    pub states: Vec<Vec<f64>>,
}

impl CellInferenceFixture {
    /// Builds the fixture with `num_slices` independently-seeded networks.
    pub fn new(num_slices: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let policies = (0..num_slices)
            .map(|_| {
                Mlp::new(
                    &[STATE_DIM, 32, 16, ACTION_DIM],
                    Activation::Tanh,
                    Activation::Sigmoid,
                    &mut rng,
                )
            })
            .collect();
        let critics = (0..num_slices)
            .map(|_| {
                Mlp::new(
                    &[STATE_DIM, 32, 16, 1],
                    Activation::Tanh,
                    Activation::Identity,
                    &mut rng,
                )
            })
            .collect();
        let states = (0..num_slices)
            .map(|_| (0..STATE_DIM).map(|_| rng.gen::<f64>()).collect())
            .collect();
        Self {
            policies,
            critics,
            states,
        }
    }

    /// Snapshots the networks into the seed repository's per-sample kernels
    /// (the dispatched baseline the fused path is measured against).
    pub fn naive(&self) -> (Vec<NaiveMlp>, Vec<NaiveMlp>) {
        (
            self.policies.iter().map(NaiveMlp::from_mlp).collect(),
            self.critics.iter().map(NaiveMlp::from_mlp).collect(),
        )
    }
}

/// Pre-rework [`Action`] dimension read: every access round-tripped through
/// a freshly allocated 10-element `Vec` (`to_vec` + index), which is what
/// made the coordination machinery allocate hundreds of times per slot.
/// Reconstructed here (like [`NaiveMlp`] reconstructs the seed kernels) so
/// the tracked JSON measures the in-place rework against what the code
/// actually did before it.
pub fn naive_action_get(a: &Action, dim: ActionDim) -> f64 {
    a.to_vec()[dim.index()]
}

/// Pre-rework [`Action`] dimension write (`to_vec`, mutate, `from_vec`).
pub fn naive_action_set(a: &mut Action, dim: ActionDim, value: f64) {
    let mut v = a.to_vec();
    v[dim.index()] = value.clamp(0.0, 1.0);
    *a = Action::from_vec(&v);
}

/// One slot of the pre-rework per-slice coordination machinery, faithfully
/// reconstructed: β-discounted modification of every proposal through
/// [`naive_action_get`]/[`naive_action_set`], per-resource share vectors
/// collected into fresh `Vec`s for the dual update and the feasibility
/// check, and an allocating proportional projection written back action by
/// action. The β arithmetic is the same Eq. 14 sub-gradient step the real
/// coordinators run, so both sides of the comparison do identical math —
/// only the data movement differs.
pub fn naive_coordination_slot(
    proposals: &[Action],
    betas: &mut [f64; 6],
    capacity: f64,
    step: f64,
) -> Vec<Action> {
    let mut actions: Vec<Action> = proposals.to_vec();
    for a in actions.iter_mut() {
        for (resource, beta) in ResourceKind::ALL.into_iter().zip(betas.iter()) {
            let dim = resource.action_dim();
            let v = naive_action_get(a, dim);
            naive_action_set(a, dim, (v - beta / 2.0).max(0.0));
        }
    }
    let refs: Vec<&Action> = actions.iter().collect();
    let mut feasible = true;
    for (resource, beta) in ResourceKind::ALL.into_iter().zip(betas.iter_mut()) {
        let shares: Vec<f64> = refs
            .iter()
            .map(|a| naive_action_get(a, resource.action_dim()))
            .collect();
        let total: f64 = shares.iter().sum();
        *beta = (*beta + step * (total - capacity)).max(0.0);
        feasible &= total - capacity <= 1e-3;
    }
    if !feasible {
        for resource in ResourceKind::ALL {
            let shares: Vec<f64> = actions
                .iter()
                .map(|a| naive_action_get(a, resource.action_dim()))
                .collect();
            let total: f64 = shares.iter().sum();
            if total > capacity && total > 0.0 {
                let scale = capacity / total;
                let projected: Vec<f64> = shares.iter().map(|s| s * scale).collect();
                for (a, p) in actions.iter_mut().zip(projected.iter()) {
                    naive_action_set(a, resource.action_dim(), *p);
                }
            }
        }
    }
    actions
}

/// The same slot through the reworked in-place path: the caller-owned
/// workspace is refilled (no per-slot `Vec`), modification runs through the
/// direct-field [`Action::get`]/[`Action::set`], and the [`DomainSet`] slice
/// APIs sum, update and project without materializing anything.
pub fn in_place_coordination_slot(
    proposals: &[Action],
    domains: &mut DomainSet,
    workspace: &mut Vec<Action>,
) {
    workspace.clear();
    workspace.extend_from_slice(proposals);
    let betas = domains.betas();
    for a in workspace.iter_mut() {
        for (resource, beta) in ResourceKind::ALL.into_iter().zip(betas.iter()) {
            let dim = resource.action_dim();
            let v = a.get(dim);
            a.set(dim, (v - beta / 2.0).max(0.0));
        }
    }
    domains.update_coordination_slice(workspace);
    if !domains.is_feasible_slice(workspace) {
        domains.project_in_place(workspace);
    }
}

/// Over-subscribed proposals for an `n`-slice cell (the projection branch of
/// the coordination machinery runs every slot, as it does while learning).
pub fn coordination_proposals(n: usize) -> Vec<Action> {
    (0..n)
        .map(|i| {
            let mut a = Action::zeros();
            for (d, dim) in ActionDim::ALL.into_iter().enumerate() {
                a.set(dim, 0.2 + 0.05 * ((i + d) % 7) as f64);
            }
            a
        })
        .collect()
}

/// Builds an `num_slices`-slice deployment (paper agents, paper networks
/// scaled to a short horizon) for the orchestrator-slot scaling benchmark.
pub fn scaled_orchestrator(num_slices: usize, seed: u64) -> Orchestrator {
    let network = NetworkConfig::testbed_default();
    let horizon = 24;
    let baselines = DeploymentBuilder::new()
        .scaled_down(horizon)
        .seed(seed)
        .calibrate_baselines();
    let mut envs = Vec::new();
    let mut agents = Vec::new();
    for i in 0..num_slices {
        let kind = SliceKind::ALL[i % 3];
        envs.push(SliceEnvironment::new(kind, network, seed + i as u64));
        let mut cfg = AgentConfig::onslicing().scaled_down(horizon);
        cfg.horizon = envs[i].horizon();
        agents.push(OnSlicingAgent::new(
            kind,
            Sla::for_kind(kind),
            baselines[i % 3].clone(),
            cfg,
            seed + 100 + i as u64,
        ));
    }
    let capacity = (num_slices as f64 / 3.0).max(1.0);
    Orchestrator::new(
        MultiSliceEnvironment::from_envs(envs),
        agents,
        DomainSet::with_parameters(capacity, 1.0),
        OrchestratorConfig {
            coordination: CoordinationMode::default(),
            episodes_per_epoch: 1,
        },
    )
}

/// Median wall-clock nanoseconds of `f` over `samples` runs of `iters`
/// iterations each (simple, dependency-free timing for the JSON emitter).
pub fn median_ns_per_iter<F: FnMut()>(samples: usize, iters: usize, mut f: F) -> f64 {
    let mut results = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        results.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    results.sort_by(|a, b| a.partial_cmp(b).expect("NaN timing"));
    results[results.len() / 2]
}

/// Paired comparison of a baseline and a contender under identical
/// conditions: each sample times both back-to-back, so slow phases of a
/// noisy (shared/throttled) host hit both sides equally and cancel out of
/// the ratio. Returns `(median baseline ns, median contender ns)` taken from
/// the sample pair whose ratio is the median ratio.
pub fn paired_median_ns<A: FnMut(), B: FnMut()>(
    samples: usize,
    iters: usize,
    mut baseline: A,
    mut contender: B,
) -> (f64, f64) {
    let mut pairs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            baseline();
        }
        let base_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        let start = std::time::Instant::now();
        for _ in 0..iters {
            contender();
        }
        let cont_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        pairs.push((base_ns, cont_ns));
    }
    pairs.sort_by(|a, b| (a.0 / a.1).partial_cmp(&(b.0 / b.1)).expect("NaN timing"));
    pairs[pairs.len() / 2]
}
