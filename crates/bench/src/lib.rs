//! # onslicing-bench
//!
//! The experiment harness of the OnSlicing reproduction.
//!
//! * `src/bin/` contains one binary per table and figure of the paper's
//!   evaluation (§7); each prints the same rows or series the paper reports.
//!   Run them with `cargo run --release --bin <name>`; every binary accepts
//!   an optional `--full` flag that switches from the CI-scale configuration
//!   (short episodes, few epochs) to a paper-scale run (96-slot episodes,
//!   many more epochs — minutes to hours of compute).
//! * `benches/` contains Criterion micro-benchmarks of the building blocks
//!   (neural-network passes, simulator slots, PPO updates, coordination
//!   rounds and full orchestration episodes).
//!
//! The helpers in this library are shared by both: deployment construction,
//! method presets, and plain-text table/series printing.

pub mod hotpath;
pub mod regress;

use onslicing_core::{
    evaluate_policy, AgentConfig, CoordinationMode, DeploymentBuilder, EpochMetrics,
    ModelBasedPolicy, Orchestrator, PolicyEvaluation, RuleBasedBaseline, SliceEnvironment,
};
use onslicing_netsim::NetworkConfig;
use onslicing_slices::{Sla, SliceKind};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Episode horizon in slots.
    pub horizon: usize,
    /// Offline pre-training episodes per agent.
    pub pretrain_episodes: usize,
    /// Online learning epochs.
    pub online_epochs: usize,
    /// Episodes per learning epoch.
    pub episodes_per_epoch: usize,
    /// Deterministic evaluation episodes.
    pub eval_episodes: usize,
}

impl RunScale {
    /// The CI-scale configuration used by default: finishes in seconds while
    /// still exercising every mechanism.
    pub fn quick() -> Self {
        Self {
            horizon: 24,
            pretrain_episodes: 2,
            online_epochs: 4,
            episodes_per_epoch: 1,
            eval_episodes: 2,
        }
    }

    /// A paper-scale configuration (96-slot episodes, longer training).
    pub fn full() -> Self {
        Self {
            horizon: 96,
            pretrain_episodes: 8,
            online_epochs: 40,
            episodes_per_epoch: 2,
            eval_episodes: 5,
        }
    }

    /// Parses the scale from the process arguments (`--full` selects the
    /// paper-scale run).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::quick()
        }
    }
}

/// Builds a scaled deployment for the given agent variant and coordination
/// mode.
pub fn build_deployment(
    variant: AgentConfig,
    coordination: CoordinationMode,
    scale: RunScale,
    seed: u64,
) -> Orchestrator {
    DeploymentBuilder::new()
        .agent_config(variant)
        .coordination(coordination)
        .episodes_per_epoch(scale.episodes_per_epoch)
        .scaled_down(scale.horizon)
        .seed(seed)
        .build()
}

/// Result row of one method in a Table-1-style comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Method name as printed.
    pub name: String,
    /// Average resource usage in percent.
    pub usage_percent: f64,
    /// Average SLA violation in percent.
    pub violation_percent: f64,
}

/// Runs one learning-agent method end to end (pre-train → online learning →
/// deterministic evaluation) and returns its test row plus the learning
/// curve.
pub fn run_learning_method(
    name: &str,
    variant: AgentConfig,
    coordination: CoordinationMode,
    scale: RunScale,
    seed: u64,
) -> (MethodResult, Vec<EpochMetrics>) {
    let mut orch = build_deployment(variant, coordination, scale, seed);
    if variant.enable_imitation {
        orch.offline_pretrain_all(scale.pretrain_episodes);
    }
    let curve = orch.run_online(scale.online_epochs);
    let test = orch.evaluate(scale.eval_episodes);
    (
        MethodResult {
            name: name.to_string(),
            usage_percent: test.avg_usage_percent,
            violation_percent: test.violation_percent,
        },
        curve,
    )
}

/// Evaluates the rule-based baseline on every slice and returns the averaged
/// row.
pub fn evaluate_rule_based(scale: RunScale, seed: u64) -> (MethodResult, Vec<PolicyEvaluation>) {
    let network = NetworkConfig::testbed_default();
    let mut evals = Vec::new();
    for (i, kind) in SliceKind::ALL.iter().enumerate() {
        let sla = Sla::for_kind(*kind);
        let baseline = RuleBasedBaseline::calibrate(
            *kind,
            &sla,
            &network,
            kind.default_peak_users_per_second(),
            5,
            seed + i as u64,
        );
        let mut env = slice_env(*kind, network, scale.horizon, seed + 50 + i as u64);
        evals.push(evaluate_policy(&baseline, &mut env, scale.eval_episodes));
    }
    (average_row("Baseline", &evals), evals)
}

/// Evaluates the model-based comparator on every slice and returns the
/// averaged row.
pub fn evaluate_model_based(scale: RunScale, seed: u64) -> (MethodResult, Vec<PolicyEvaluation>) {
    let network = NetworkConfig::testbed_default();
    let mut evals = Vec::new();
    for (i, kind) in SliceKind::ALL.iter().enumerate() {
        let sla = Sla::for_kind(*kind);
        let policy = ModelBasedPolicy::new(*kind, sla, kind.default_peak_users_per_second());
        let mut env = slice_env(*kind, network, scale.horizon, seed + 80 + i as u64);
        evals.push(evaluate_policy(&policy, &mut env, scale.eval_episodes));
    }
    (average_row("Model_Based", &evals), evals)
}

/// Builds one slice environment with an explicit horizon.
pub fn slice_env(
    kind: SliceKind,
    network: NetworkConfig,
    horizon: usize,
    seed: u64,
) -> SliceEnvironment {
    let trace = match kind {
        SliceKind::Mar => onslicing_traffic::DiurnalTraceConfig::mar_default(),
        SliceKind::Hvs => onslicing_traffic::DiurnalTraceConfig::hvs_default(),
        SliceKind::Rdc => onslicing_traffic::DiurnalTraceConfig::rdc_default(),
    };
    SliceEnvironment::with_trace_config(kind, Sla::for_kind(kind), network, trace, horizon, seed)
}

fn average_row(name: &str, evals: &[PolicyEvaluation]) -> MethodResult {
    let n = evals.len().max(1) as f64;
    MethodResult {
        name: name.to_string(),
        usage_percent: evals.iter().map(|e| e.avg_usage_percent).sum::<f64>() / n,
        violation_percent: evals.iter().map(|e| e.violation_percent).sum::<f64>() / n,
    }
}

/// Prints a Table-1-style comparison.
pub fn print_method_table(title: &str, rows: &[MethodResult]) {
    println!("\n=== {title} ===");
    println!(
        "{:<24} {:>20} {:>22}",
        "Method", "Avg. res. usage (%)", "Avg. SLA violation (%)"
    );
    for r in rows {
        println!(
            "{:<24} {:>20.2} {:>22.2}",
            r.name, r.usage_percent, r.violation_percent
        );
    }
}

/// Prints a learning curve (one line per epoch).
pub fn print_learning_curve(title: &str, curve: &[EpochMetrics]) {
    println!("\n--- {title} ---");
    println!(
        "{:<8} {:>18} {:>20}",
        "epoch", "avg usage (%)", "avg violation (%)"
    );
    for (i, m) in curve.iter().enumerate() {
        println!(
            "{:<8} {:>18.2} {:>20.2}",
            i, m.avg_usage_percent, m.violation_percent
        );
    }
}

/// Prints a generic two-column numeric series.
pub fn print_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) {
    println!("\n--- {title} ---");
    println!("{x_label:<16} {y_label:>16}");
    for (x, y) in points {
        println!("{x:<16.4} {y:>16.4}");
    }
}

/// Empirical CDF of a sample set as `(value, probability)` points.
pub fn empirical_cdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len().max(1) as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_small() {
        let q = RunScale::quick();
        assert!(q.horizon <= 48);
        assert!(q.online_epochs <= 10);
        let f = RunScale::full();
        assert_eq!(f.horizon, 96);
    }

    #[test]
    fn empirical_cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn rule_based_evaluation_produces_three_slices() {
        let scale = RunScale {
            horizon: 8,
            pretrain_episodes: 1,
            online_epochs: 1,
            episodes_per_epoch: 1,
            eval_episodes: 1,
        };
        let (row, evals) = evaluate_rule_based(scale, 1);
        assert_eq!(evals.len(), 3);
        assert!(row.usage_percent > 0.0);
    }
}
