//! Fig. 11 — online learning curves of the OnSlicing agents: average resource
//! usage decreases gradually per slice while SLA violations stay near zero.

use onslicing_bench::{build_deployment, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode};

fn main() {
    let scale = RunScale::from_args();
    let mut orch = build_deployment(
        AgentConfig::onslicing(),
        CoordinationMode::default(),
        scale,
        71,
    );
    orch.offline_pretrain_all(scale.pretrain_episodes);

    println!("\n=== Fig. 11: online learning of OnSlicing agents ===");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>18}",
        "epoch", "MAR use%", "HVS use%", "RDC use%", "avg violation (%)"
    );
    for epoch in 0..scale.online_epochs {
        let mut per_slice = [0.0f64; 3];
        let mut count = [0usize; 3];
        let mut episodes = Vec::new();
        for _ in 0..scale.episodes_per_epoch {
            let ep = orch.run_episode(true);
            for (i, s) in ep.slices.iter().enumerate() {
                per_slice[i] += s.avg_usage_percent;
                count[i] += 1;
            }
            episodes.push(ep);
        }
        for agent in orch.agents_mut() {
            agent.update_policy();
        }
        let agg = onslicing_core::EpochMetrics::from_episodes(&episodes);
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.2} {:>18.2}",
            epoch,
            per_slice[0] / count[0].max(1) as f64,
            per_slice[1] / count[1].max(1) as f64,
            per_slice[2] / count[2].max(1) as f64,
            agg.violation_percent
        );
    }
    println!("\nPaper shape: usage decreases gradually per slice; violations stay near zero with at most small spikes.");
}
