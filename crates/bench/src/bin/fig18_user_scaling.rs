//! Fig. 18 — large-scale emulation: average resource usage and SLA violation
//! of the MAR slice as the number of emulated users grows (the agent is not
//! retrained; only the traffic scales).

use onslicing_bench::{slice_env, RunScale};
use onslicing_core::{evaluate_policy, RuleBasedBaseline};
use onslicing_netsim::NetworkConfig;
use onslicing_slices::{Sla, SliceKind};
use onslicing_traffic::DiurnalTraceConfig;

fn main() {
    let scale = RunScale::from_args();
    let network = NetworkConfig::testbed_default();
    let sla = Sla::for_kind(SliceKind::Mar);
    // One policy calibrated at the nominal 5-users/s peak, applied unchanged
    // to heavier traffic (as in the paper, the agent is not retrained).
    let baseline = RuleBasedBaseline::calibrate(SliceKind::Mar, &sla, &network, 5.0, 5, 7);

    println!("\n=== Fig. 18: performance under varying numbers of emulated MAR users ===");
    println!(
        "{:<12} {:>16} {:>20}",
        "users (peak)", "avg usage (%)", "violation (%)"
    );
    for users in [1.0, 5.0, 10.0, 20.0, 30.0] {
        let trace = DiurnalTraceConfig::mar_default().with_peak_rate(users);
        let mut env = onslicing_core::SliceEnvironment::with_trace_config(
            SliceKind::Mar,
            sla,
            network,
            trace,
            scale.horizon,
            300 + users as u64,
        );
        // The policy believes traffic is normalized to its own 5-user peak,
        // so heavier loads look like >100% traffic (clamped), exactly the
        // "overwhelmed" regime of the paper.
        let eval = evaluate_policy(&baseline, &mut env, scale.eval_episodes);
        println!(
            "{:<12} {:>16.2} {:>20.2}",
            users, eval.avg_usage_percent, eval.violation_percent
        );
        let _ = slice_env(SliceKind::Mar, network, scale.horizon, 0); // keep helper linked
    }
    println!("\nPaper shape: usage grows with the user count; violations stay low until the system is overwhelmed (~20+ users).");
}
