//! The perf-regression gate: compares a freshly produced `BENCH_*.json`
//! against its committed baseline and exits non-zero on regression.
//!
//! ```sh
//! # Gate (CI): fail when the fresh artifact regresses past the tolerances.
//! cargo run --release --bin bench_regress -- ci-bench.json baselines/BENCH_hotpath.json
//! # Intentional rebaseline: overwrite the committed baseline with the
//! # fresh artifact (commit the result).
//! cargo run --release --bin bench_regress -- ci-bench.json baselines/BENCH_hotpath.json --update
//! ```
//!
//! Tolerances (overridable with `--slower-tol` / `--speedup-tol`, both
//! fractions): latency-like `*_ns`/`*_ms` metrics may regress up to +35 %,
//! throughput-like `*speedup*`/`*per_second*` metrics may lose up to 15 %,
//! and deterministic metrics (SLA violation rates, cost statistics, counts,
//! schema strings) must match exactly. Structural drift — metrics added,
//! removed, or series resized — always fails; rebaseline with `--update`
//! when the change is intentional. Exit codes: 0 = pass, 1 = regression,
//! 2 = usage/setup error.

use std::process::ExitCode;

use onslicing_bench::regress::{compare_json, Tolerances};

fn usage() -> String {
    "usage: bench_regress <fresh.json> <baseline.json> [--update] \
     [--slower-tol X] [--speedup-tol Y]"
        .to_string()
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut update = false;
    let mut tol = Tolerances::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--slower-tol" => {
                let v = iter.next().ok_or("--slower-tol needs a value")?;
                tol.slower = v
                    .parse()
                    .map_err(|_| format!("invalid --slower-tol `{v}`"))?;
            }
            "--speedup-tol" => {
                let v = iter.next().ok_or("--speedup-tol needs a value")?;
                tol.speedup_loss = v
                    .parse()
                    .map_err(|_| format!("invalid --speedup-tol `{v}`"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            name => positional.push(name.to_string()),
        }
    }
    let [fresh_path, baseline_path] = positional.as_slice() else {
        return Err(usage());
    };
    let fresh = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read fresh artifact `{fresh_path}`: {e}"))?;
    if update {
        if let Some(parent) = std::path::Path::new(baseline_path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
            }
        }
        std::fs::write(baseline_path, &fresh)
            .map_err(|e| format!("cannot write baseline `{baseline_path}`: {e}"))?;
        println!("baseline updated: {fresh_path} -> {baseline_path}");
        return Ok(true);
    }
    let baseline = std::fs::read_to_string(baseline_path).map_err(|e| {
        format!(
            "cannot read baseline `{baseline_path}`: {e} \
             (first run? create it with --update and commit it)"
        )
    })?;
    let report = compare_json(&baseline, &fresh, &tol)?;
    if report.passed() {
        println!(
            "bench_regress ok: {fresh_path} within tolerance of {baseline_path} \
             ({} metrics checked, {} informational)",
            report.checked,
            report.skipped.len()
        );
        Ok(true)
    } else {
        eprintln!(
            "bench_regress REGRESSION: {fresh_path} vs {baseline_path} — {} finding(s):",
            report.regressions.len()
        );
        for r in &report.regressions {
            eprintln!("  {r}");
        }
        eprintln!(
            "(intentional change? rebaseline with \
             `bench_regress {fresh_path} {baseline_path} --update` and commit)"
        );
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bench_regress: {e}");
            ExitCode::from(2)
        }
    }
}
