//! Fig. 15 — average allocated resource per action dimension and per slice
//! after learning: MAR leans on uplink radio and edge CPU, HVS on downlink
//! radio, RDC on the MCS offsets.

use onslicing_bench::{build_deployment, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode};
use onslicing_slices::ActionDim;

fn main() {
    let scale = RunScale::from_args();
    let mut orch = build_deployment(
        AgentConfig::onslicing(),
        CoordinationMode::default(),
        scale,
        111,
    );
    orch.offline_pretrain_all(scale.pretrain_episodes);
    orch.run_online(scale.online_epochs);

    // Collect the executed actions of a deterministic evaluation episode.
    orch.env_mut().reset_all();
    let horizon = orch.env().envs()[0].horizon();
    let mut sums = vec![[0.0f64; 3]; ActionDim::ALL.len()];
    for _ in 0..horizon {
        let outcome = orch.run_slot(false);
        for (slice, action) in outcome.executed.iter().enumerate() {
            for (d, dim) in ActionDim::ALL.iter().enumerate() {
                sums[d][slice] += action.get(*dim);
            }
        }
    }
    println!("\n=== Fig. 15: avg. allocated resource per action dimension (%) ===");
    println!("{:<6} {:>10} {:>10} {:>10}", "dim", "MAR", "HVS", "RDC");
    for (d, dim) in ActionDim::ALL.iter().enumerate() {
        println!(
            "{:<6} {:>10.1} {:>10.1} {:>10.1}",
            dim.symbol(),
            100.0 * sums[d][0] / horizon as f64,
            100.0 * sums[d][1] / horizon as f64,
            100.0 * sums[d][2] / horizon as f64
        );
    }
    println!("\nPaper shape: MAR gets the most Uu and Uc, HVS the most Ud, RDC the highest Um/Us.");
}
