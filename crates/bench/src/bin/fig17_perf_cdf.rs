//! Fig. 17 — CDF of the normalized slice performance `p_t / P` under 4G LTE
//! and 5G NR with the baseline allocation: NR noticeably improves the MAR
//! (latency) and RDC (reliability) slices, while HVS is similar because the
//! streaming server's frame rate is fixed.

use onslicing_bench::{empirical_cdf, slice_env, RunScale};
use onslicing_core::{RuleBasedBaseline, SlicePolicy};
use onslicing_netsim::{NetworkConfig, RanConfig};
use onslicing_slices::{Sla, SliceKind};

fn collect_scores(network: NetworkConfig, kind: SliceKind, horizon: usize, seed: u64) -> Vec<f64> {
    let sla = Sla::for_kind(kind);
    let baseline = RuleBasedBaseline::calibrate(
        kind,
        &sla,
        &network,
        kind.default_peak_users_per_second(),
        5,
        seed,
    );
    let mut env = slice_env(kind, network, horizon, seed + 7);
    let mut scores = Vec::new();
    let mut state = env.reset();
    loop {
        let r = env.step(&baseline.act(&state));
        scores.push(r.kpi.performance_score);
        state = r.next_state;
        if r.done {
            break;
        }
    }
    scores
}

fn main() {
    let scale = RunScale::from_args();
    let lte = NetworkConfig::testbed_default().with_ran(RanConfig::lte_fixed_mcs9());
    let nr = NetworkConfig::testbed_default().with_ran(RanConfig::nr_fixed_mcs9());
    println!("\n=== Fig. 17: slice performance (p_t / P) CDF in LTE and NR ===");
    for kind in SliceKind::ALL {
        for (label, network) in [("LTE", lte), ("NR", nr)] {
            let scores = collect_scores(network, kind, scale.horizon.max(48), 200);
            let cdf = empirical_cdf(&scores);
            let median = cdf[cdf.len() / 2].0;
            let p10 = cdf[cdf.len() / 10].0;
            println!(
                "{label:>4}, {:<4} median p/P = {median:.3}, 10th percentile = {p10:.3}",
                kind.name()
            );
        }
    }
    println!("\nPaper shape: NR improves MAR and RDC noticeably; HVS is similar under both RATs.");
}
