//! Fig. 13 — average SLA violation over online-learning epochs for the
//! switching ablations: OnSlicing, OnSlicing-NE and OnSlicing-NB.

use onslicing_bench::{run_learning_method, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode};

fn main() {
    let scale = RunScale::from_args();
    let variants = [
        ("OnSlicing", AgentConfig::onslicing()),
        ("OnSlicing-NE", AgentConfig::onslicing_ne()),
        ("OnSlicing-NB", AgentConfig::onslicing_nb()),
    ];
    let mut curves = Vec::new();
    for (i, (name, cfg)) in variants.iter().enumerate() {
        let (_, curve) = run_learning_method(
            name,
            *cfg,
            CoordinationMode::default(),
            scale,
            91 + i as u64,
        );
        curves.push((*name, curve));
    }
    println!("\n=== Fig. 13: violation over epochs for switching variants ===");
    print!("{:<8}", "epoch");
    for (name, _) in &curves {
        print!(" {name:>16}");
    }
    println!();
    for epoch in 0..scale.online_epochs {
        print!("{epoch:<8}");
        for (_, curve) in &curves {
            print!(" {:>16.2}", curve[epoch].violation_percent);
        }
        println!();
    }
    println!("\nPaper shape: OnSlicing-NB has the highest violation, OnSlicing-NE is intermediate, OnSlicing stays near zero.");
}
