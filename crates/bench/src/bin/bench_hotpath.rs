//! Emits `BENCH_hotpath.json` — the machine-readable record of the numeric
//! hot path's performance, tracked across PRs.
//!
//! Measures (wall clock, median of several samples):
//!
//! * the paper-sized MLP forward at batch 64: per-sample loop vs one batched
//!   GEMM pass (`speedup` = per-sample / batched);
//! * one PPO minibatch update (64 transitions, paper networks): the former
//!   per-sample loop vs the batched path;
//! * one behavior-cloning epoch over 96 demonstrations (batched path only,
//!   absolute trend line);
//! * one slot of cell-wide inference (policy mean + critic per slice, the
//!   deployment-scale trunks the fused orchestrator actually runs) at
//!   3/9/12/18 slices: the dispatched per-slice loop vs the fused
//!   `CellBatch` layer-major sweep;
//! * one slot of the coordination machinery at 12 slices: the pre-rework
//!   allocating per-slice path vs the in-place slice APIs — this
//!   `fused_speedup` is gated against an absolute ≥5x floor by
//!   `bench_regress`;
//! * the N-slice orchestrator episode (24 slots, deterministic), whose
//!   per-slot latency should grow sub-linearly in the slice count on a
//!   multi-core host (the decision/step phases fan out with rayon).
//!
//! Usage: `cargo run --release --bin bench_hotpath [output-path]`
//! (default output: `BENCH_hotpath.json` in the current directory).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use onslicing_bench::hotpath::{
    batched_ppo, coordination_proposals, filled_buffer, hotpath_ppo_config,
    in_place_coordination_slot, median_ns_per_iter, naive_coordination_slot, paired_median_ns,
    paper_actor_critic, scaled_orchestrator, CellInferenceFixture, NaiveMlp, PerSamplePpo,
};
use onslicing_domains::DomainSet;
use onslicing_nn::{Activation, BatchWorkspace, CellBatch, Matrix, Mlp};
use onslicing_rl::{behavior_clone, BcConfig, Demonstration};
use onslicing_slices::{ACTION_DIM, STATE_DIM};

const BATCH: usize = 64;
const SAMPLES: usize = 7;

fn measure_forward() -> (f64, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let net = Mlp::onslicing_default(STATE_DIM, ACTION_DIM, Activation::Sigmoid, &mut rng);
    let naive = NaiveMlp::from_mlp(&net);
    let x = vec![0.3; STATE_DIM];
    let mut batch = Matrix::zeros(BATCH, STATE_DIM);
    for r in 0..BATCH {
        batch.copy_row_from(r, &x);
    }
    let mut ws = BatchWorkspace::new();
    paired_median_ns(
        SAMPLES,
        200,
        || {
            for _ in 0..BATCH {
                std::hint::black_box(naive.forward(std::hint::black_box(&x)));
            }
        },
        || {
            std::hint::black_box(
                net.forward_batch(std::hint::black_box(&batch), &mut ws)
                    .get(0, 0),
            );
        },
    )
}

fn measure_ppo() -> (f64, f64) {
    let (policy, critic) = paper_actor_critic(1);
    let buffer = filled_buffer(&policy, &critic, BATCH, 2);
    let mut per_sample_ppo = PerSamplePpo::new(&policy, &critic, hotpath_ppo_config());
    let mut batched_agent = batched_ppo(&policy, &critic);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    paired_median_ns(
        SAMPLES,
        20,
        || per_sample_ppo.update(std::hint::black_box(&buffer)),
        || {
            std::hint::black_box(batched_agent.update(std::hint::black_box(&buffer), &mut rng));
        },
    )
}

fn measure_bc_epoch() -> f64 {
    let (mut policy, _critic) = paper_actor_critic(4);
    let demos: Vec<Demonstration> = (0..96)
        .map(|i| Demonstration {
            state: vec![i as f64 / 96.0; STATE_DIM],
            action: vec![0.3; ACTION_DIM],
        })
        .collect();
    let bc = BcConfig {
        epochs: 1,
        ..BcConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    median_ns_per_iter(SAMPLES, 10, || {
        std::hint::black_box(behavior_clone(&mut policy, &demos, &bc, &mut rng));
    })
}

/// One slot's worth of cell inference (policy mean + critic for every
/// slice): the dispatched per-slice path (seed kernels, one allocation
/// chain per network call) versus the fused [`CellBatch`] sweep (gather
/// once, one layer-major grouped pass per network family, zero steady-state
/// allocations). Returns `(slices, dispatched_ns, fused_ns)` per cell size.
fn measure_fused_cell() -> Vec<(usize, f64, f64)> {
    [3usize, 9, 12, 18]
        .into_iter()
        .map(|num_slices| {
            let fixture = CellInferenceFixture::new(num_slices, 20 + num_slices as u64);
            let (naive_policies, naive_critics) = fixture.naive();
            let mut policy_cell = CellBatch::new();
            let mut critic_cell = CellBatch::new();
            let (dispatched_ns, fused_ns) = paired_median_ns(
                SAMPLES,
                200,
                || {
                    for (i, state) in fixture.states.iter().enumerate() {
                        std::hint::black_box(
                            naive_policies[i].forward(std::hint::black_box(state)),
                        );
                        std::hint::black_box(naive_critics[i].forward(std::hint::black_box(state)));
                    }
                },
                || {
                    {
                        let input = policy_cell.input_mut(num_slices, fixture.states[0].len());
                        for (i, state) in fixture.states.iter().enumerate() {
                            input
                                .row_mut(i)
                                .copy_from_slice(std::hint::black_box(state));
                        }
                    }
                    std::hint::black_box(
                        policy_cell.forward_grouped(|i| &fixture.policies[i]).data(),
                    );
                    {
                        let input = critic_cell.input_mut(num_slices, fixture.states[0].len());
                        input.data_mut().copy_from_slice(policy_cell.input().data());
                    }
                    std::hint::black_box(
                        critic_cell.forward_grouped(|i| &fixture.critics[i]).data(),
                    );
                },
            );
            (num_slices, dispatched_ns, fused_ns)
        })
        .collect()
}

/// The per-slot coordination machinery at 12 slices: the pre-rework
/// per-slice path (every `Action` dimension read/written through a fresh
/// `Vec`, share vectors collected per resource, allocating projection)
/// versus the in-place slice APIs over a caller-owned workspace. Identical
/// arithmetic on both sides; this isolates what the allocation-free rework
/// bought. Gated by `bench_regress` against an absolute ≥5x floor.
fn measure_coordination() -> (f64, f64) {
    const SLICES: usize = 12;
    let proposals = coordination_proposals(SLICES);
    let capacity = SLICES as f64 / 3.0;
    let mut naive_betas = [0.0f64; 6];
    let mut domains = DomainSet::with_parameters(capacity, 1.0);
    let mut workspace: Vec<onslicing_slices::Action> = Vec::new();
    paired_median_ns(
        SAMPLES,
        2000,
        || {
            std::hint::black_box(naive_coordination_slot(
                std::hint::black_box(&proposals),
                &mut naive_betas,
                capacity,
                1.0,
            ));
        },
        || {
            in_place_coordination_slot(
                std::hint::black_box(&proposals),
                &mut domains,
                &mut workspace,
            );
            std::hint::black_box(&workspace);
        },
    )
}

fn measure_orchestrator() -> Vec<(usize, f64)> {
    let horizon = 24.0;
    [3usize, 9, 18]
        .into_iter()
        .map(|num_slices| {
            let mut orch = scaled_orchestrator(num_slices, 10 + num_slices as u64);
            // One warm-up episode so lazily-sized buffers settle.
            orch.run_episode(false);
            let episode_ns = median_ns_per_iter(3, 1, || {
                std::hint::black_box(orch.run_episode(false).avg_interactions);
            });
            (num_slices, episode_ns / horizon)
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    println!("bench_hotpath: measuring the NN/PPO/orchestrator hot path ...");

    let (fwd_per_sample, fwd_batched) = measure_forward();
    println!("  mlp forward (batch {BATCH}): per-sample {fwd_per_sample:.0} ns, batched {fwd_batched:.0} ns");
    let (ppo_per_sample, ppo_batched) = measure_ppo();
    println!(
        "  ppo minibatch update: per-sample {ppo_per_sample:.0} ns, batched {ppo_batched:.0} ns"
    );
    let bc_epoch = measure_bc_epoch();
    println!("  bc epoch (96 demos): {bc_epoch:.0} ns");
    let fused = measure_fused_cell();
    for (n, dispatched, fused_ns) in &fused {
        println!(
            "  fused cell slot ({n} slices): dispatched {dispatched:.0} ns, fused {fused_ns:.0} ns \
             ({:.2}x)",
            dispatched / fused_ns.max(1.0)
        );
    }
    let (coord_naive, coord_fused) = measure_coordination();
    println!(
        "  coordination machinery (12 slices): per-slice {coord_naive:.0} ns, in-place \
         {coord_fused:.0} ns ({:.2}x)",
        coord_naive / coord_fused.max(1.0)
    );
    let slots = measure_orchestrator();
    for (n, ns) in &slots {
        println!("  orchestrator slot ({n} slices): {ns:.0} ns/slot");
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let forward_speedup = fwd_per_sample / fwd_batched.max(1.0);
    let ppo_speedup = ppo_per_sample / ppo_batched.max(1.0);
    // Per-slot latency ratio of the largest vs smallest deployment, divided
    // by the slice-count ratio: < 1.0 means sub-linear scaling.
    let (n_lo, t_lo) = slots.first().copied().unwrap_or((1, 1.0));
    let (n_hi, t_hi) = slots.last().copied().unwrap_or((1, 1.0));
    let scaling_exponent_denominator = (n_hi as f64 / n_lo as f64).max(1.0);
    let sublinearity = (t_hi / t_lo.max(1.0)) / scaling_exponent_denominator;

    let fused_12 = fused
        .iter()
        .find(|(n, _, _)| *n == 12)
        .map(|(_, d, f)| d / f.max(1.0))
        .unwrap_or(0.0);
    let coord_speedup = coord_naive / coord_fused.max(1.0);

    let fused_entries: Vec<String> = fused
        .iter()
        .map(|(n, dispatched, fused_ns)| {
            format!(
                "    {{ \"slices\": {n}, \"dispatched_ns\": {dispatched:.1}, \
                 \"fused_ns\": {fused_ns:.1}, \"speedup\": {:.2} }}",
                dispatched / fused_ns.max(1.0)
            )
        })
        .collect();
    let slot_entries: Vec<String> = slots
        .iter()
        .map(|(n, ns)| format!("    {{ \"slices\": {n}, \"ns_per_slot\": {ns:.1} }}"))
        .collect();
    let json = format!(
        "{{\n\
         \x20 \"schema\": \"onslicing-hotpath-bench/2\",\n\
         \x20 \"threads\": {threads},\n\
         \x20 \"batch\": {BATCH},\n\
         \x20 \"trunk\": \"onslicing_default 128x64x32\",\n\
         \x20 \"mlp_forward\": {{\n\
         \x20   \"per_sample_ns\": {fwd_per_sample:.1},\n\
         \x20   \"batched_ns\": {fwd_batched:.1},\n\
         \x20   \"speedup\": {forward_speedup:.2}\n\
         \x20 }},\n\
         \x20 \"ppo_minibatch_update\": {{\n\
         \x20   \"per_sample_ns\": {ppo_per_sample:.1},\n\
         \x20   \"batched_ns\": {ppo_batched:.1},\n\
         \x20   \"speedup\": {ppo_speedup:.2}\n\
         \x20 }},\n\
         \x20 \"bc_epoch_96_demos_ns\": {bc_epoch:.1},\n\
         \x20 \"fused_cell_slot\": [\n{fused_rows}\n\x20 ],\n\
         \x20 \"cell_inference_speedup_12_slices\": {fused_12:.2},\n\
         \x20 \"coordination_machinery\": {{\n\
         \x20   \"slices\": 12,\n\
         \x20   \"per_slice_ns\": {coord_naive:.1},\n\
         \x20   \"in_place_ns\": {coord_fused:.1},\n\
         \x20   \"fused_speedup\": {coord_speedup:.2}\n\
         \x20 }},\n\
         \x20 \"orchestrator_slot\": [\n{slot_rows}\n\x20 ],\n\
         \x20 \"orchestrator_sublinearity\": {sublinearity:.3}\n\
         }}\n",
        fused_rows = fused_entries.join(",\n"),
        slot_rows = slot_entries.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("failed to write the benchmark JSON");
    println!(
        "\nforward speedup: {forward_speedup:.2}x, ppo update speedup: {ppo_speedup:.2}x, \
         fused cell inference (12 slices): {fused_12:.2}x, \
         coordination machinery: {coord_speedup:.2}x, \
         slot sub-linearity: {sublinearity:.3} (< 1 is sub-linear; {threads} thread(s))"
    );
    println!("wrote {out_path}");
}
