//! Fig. 5 — per-slice data rate under the radio domain manager: three slices
//! with equal radio shares saturate their allocations, and their total is
//! close to the vanilla (unsliced) system, demonstrating low-overhead
//! virtualization and isolation.

use onslicing_netsim::{Direction, NetworkConfig, NetworkSimulator};
use onslicing_slices::SliceKind;

fn main() {
    let mut sim = NetworkSimulator::new(NetworkConfig::testbed_default().with_seed(5));
    println!("\n=== Fig. 5: data rate of slices with the RDM (saturation) ===");
    println!("{:<12} {:>14} {:>14}", "Slice", "DL (Mbps)", "UL (Mbps)");

    // Vanilla: one tenant owning the whole carrier.
    let vanilla_dl = sim.saturation_throughput_mbps(SliceKind::Mar, 1.0, Direction::Downlink);
    let vanilla_ul = sim.saturation_throughput_mbps(SliceKind::Mar, 1.0, Direction::Uplink);
    println!(
        "{:<12} {:>14.2} {:>14.2}",
        "Vanilla", vanilla_dl, vanilla_ul
    );

    // Three slices with equal one-third shares.
    let mut total_dl = 0.0;
    let mut total_ul = 0.0;
    for (i, kind) in SliceKind::ALL.iter().enumerate() {
        let dl = sim.saturation_throughput_mbps(*kind, 1.0 / 3.0, Direction::Downlink);
        let ul = sim.saturation_throughput_mbps(*kind, 1.0 / 3.0, Direction::Uplink);
        total_dl += dl;
        total_ul += ul;
        println!(
            "{:<12} {:>14.2} {:>14.2}",
            format!("Slice {}", i + 1),
            dl,
            ul
        );
    }
    println!(
        "{:<12} {:>14.2} {:>14.2}",
        "Slices total", total_dl, total_ul
    );
    println!(
        "\nVirtualization overhead: DL {:.1}%, UL {:.1}% (paper: total of slices ≈ vanilla)",
        100.0 * (1.0 - total_dl / vanilla_dl),
        100.0 * (1.0 - total_ul / vanilla_ul)
    );
}
