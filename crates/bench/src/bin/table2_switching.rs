//! Table 2 — average performance of the proactive baseline switching
//! variants throughout the online learning phase: OnSlicing, OnSlicing-NE
//! (no estimator), OnSlicing-NB (no baseline switching) and OnSlicing with a
//! noisy estimator.
//!
//! Paper reference values (usage % / violation %): OnSlicing 29.07 / 0.06,
//! OnSlicing-NE 30.81 / 0.33, OnSlicing-NB 29.64 / 2.94,
//! OnSlicing Est. Noise 52.91 / 1.03.

use onslicing_bench::{print_method_table, run_learning_method, MethodResult, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode, EpochMetrics};

fn online_average(name: &str, curve: &[EpochMetrics]) -> MethodResult {
    let n = curve.len().max(1) as f64;
    MethodResult {
        name: name.to_string(),
        usage_percent: curve.iter().map(|m| m.avg_usage_percent).sum::<f64>() / n,
        violation_percent: curve.iter().map(|m| m.violation_percent).sum::<f64>() / n,
    }
}

fn main() {
    let scale = RunScale::from_args();
    let variants = [
        ("OnSlicing", AgentConfig::onslicing()),
        ("OnSlicing-NE", AgentConfig::onslicing_ne()),
        ("OnSlicing-NB", AgentConfig::onslicing_nb()),
        (
            "OnSlicing Est. Noise",
            AgentConfig::onslicing_estimator_noise(1.0),
        ),
    ];
    let mut rows = Vec::new();
    for (i, (name, cfg)) in variants.iter().enumerate() {
        let (_test, curve) = run_learning_method(
            name,
            *cfg,
            CoordinationMode::default(),
            scale,
            10 + i as u64,
        );
        rows.push(online_average(name, &curve));
    }
    print_method_table(
        "Table 2: avg. performance of baseline switching variants during online learning",
        &rows,
    );
    println!(
        "\nPaper reference: OnSlicing 29.07/0.06, OnSlicing-NE 30.81/0.33, OnSlicing-NB 29.64/2.94, Est. Noise 52.91/1.03"
    );
}
