//! Table 3 — performance of the action-modification mechanism versus plain
//! projection and a noisy modifier: usage, violation and the number of
//! agent↔domain-manager interactions per slot.
//!
//! Paper reference values: OnSlicing 20.2 % / 0.00 % / 1.83 interactions,
//! OnSlicing-projection 18.2 % / 3.66 % / 1.00,
//! OnSlicing Md. Noise 23.8 % / 2.57 % / 2.16.

use onslicing_bench::{build_deployment, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode, EpochMetrics};

struct Row {
    name: &'static str,
    usage: f64,
    violation: f64,
    interactions: f64,
}

fn run(
    name: &'static str,
    cfg: AgentConfig,
    mode: CoordinationMode,
    scale: RunScale,
    seed: u64,
) -> Row {
    let mut orch = build_deployment(cfg, mode, scale, seed);
    orch.offline_pretrain_all(scale.pretrain_episodes);
    let curve = orch.run_online(scale.online_epochs);
    let agg = EpochMetrics::from_episodes(&[]);
    let _ = agg;
    let n = curve.len().max(1) as f64;
    Row {
        name,
        usage: curve.iter().map(|m| m.avg_usage_percent).sum::<f64>() / n,
        violation: curve.iter().map(|m| m.violation_percent).sum::<f64>() / n,
        interactions: curve.iter().map(|m| m.avg_interactions).sum::<f64>() / n,
    }
}

fn main() {
    let scale = RunScale::from_args();
    let rows = [
        run(
            "OnSlicing",
            AgentConfig::onslicing(),
            CoordinationMode::default(),
            scale,
            21,
        ),
        run(
            "OnSlicing-projection",
            AgentConfig::onslicing(),
            CoordinationMode::Projection,
            scale,
            22,
        ),
        run(
            "OnSlicing Md. Noise",
            AgentConfig::onslicing_modifier_noise(1.0),
            CoordinationMode::default(),
            scale,
            23,
        ),
    ];
    println!("\n=== Table 3: action modification vs projection ===");
    println!(
        "{:<24} {:>12} {:>12} {:>16}",
        "Method", "Usage (%)", "Viol. (%)", "Interact num."
    );
    for r in rows {
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>16.2}",
            r.name, r.usage, r.violation, r.interactions
        );
    }
    println!(
        "\nPaper reference: OnSlicing 20.2/0.00/1.83, projection 18.2/3.66/1.00, Md. Noise 23.8/2.57/2.16"
    );
}
