//! Fig. 9 — learning trajectory of the four methods in the (usage, violation)
//! plane throughout the online learning phase: OnSlicing drifts toward low
//! usage at near-zero violation, OnRL starts at high usage / high violation,
//! and the two non-learning methods are single points.

use onslicing_bench::{evaluate_model_based, evaluate_rule_based, run_learning_method, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode};

fn main() {
    let scale = RunScale::from_args();
    let (_, onslicing_curve) = run_learning_method(
        "OnSlicing",
        AgentConfig::onslicing(),
        CoordinationMode::default(),
        scale,
        51,
    );
    let (_, onrl_curve) = run_learning_method(
        "OnRL",
        AgentConfig::onrl(),
        CoordinationMode::Projection,
        scale,
        52,
    );
    let (baseline, _) = evaluate_rule_based(scale, 53);
    let (model_based, _) = evaluate_model_based(scale, 54);

    println!("\n=== Fig. 9: learning trajectory (usage % vs violation %) ===");
    for (name, curve) in [("OnSlicing", &onslicing_curve), ("OnRL", &onrl_curve)] {
        println!("\n{name}:");
        println!("{:<8} {:>14} {:>16}", "epoch", "usage (%)", "violation (%)");
        for (i, m) in curve.iter().enumerate() {
            println!(
                "{:<8} {:>14.2} {:>16.2}",
                i, m.avg_usage_percent, m.violation_percent
            );
        }
    }
    println!("\nSingle-point methods:");
    for row in [baseline, model_based] {
        println!(
            "{:<14} usage {:>8.2}%  violation {:>8.2}%",
            row.name, row.usage_percent, row.violation_percent
        );
    }
    println!("\nPaper shape: OnSlicing moves left (less usage) staying at ~0 violation; OnRL starts top-right and wanders.");
}
