//! Executes scenarios end to end and emits per-scenario JSON metrics.
//!
//! Fleet built-ins (`hotspot-shift`, `cell-outage`) are accepted alongside
//! the single-cell names: they run on a 2-cell elastic fleet with the
//! default balancer and report migrations and fleet-admission outcomes.
//!
//! ```sh
//! # Run the whole built-in catalogue (single-cell and fleet):
//! cargo run --release --bin scenario_runner
//! # Run selected built-ins:
//! cargo run --release --bin scenario_runner -- steady tn-degradation
//! # Run a scenario file:
//! cargo run --release --bin scenario_runner -- --file my_scenario.json
//! # Print a built-in as JSON (a starting point for custom files):
//! cargo run --release --bin scenario_runner -- --dump flash-crowd
//! ```
//!
//! Options: `--list` (catalogue), `--seed N` (master seed, default 0),
//! `--out PATH` (metrics file, default `SCENARIO_metrics.json`),
//! `--dump NAME` (print a built-in scenario's JSON and exit).
//!
//! The process exits non-zero if any scenario panics or reports a
//! non-finite metric, which is what the CI smoke step keys on.

use std::process::ExitCode;

use serde::Serialize;

use onslicing_fleet::{ElasticFleetConfig, ElasticFleetRunner};
use onslicing_scenario::{
    builtin, fleet, Scenario, ScenarioConfig, ScenarioEngine, ScenarioReport,
};

/// Per-fleet-scenario smoke metrics (deterministic fields only).
#[derive(Serialize)]
struct FleetSmoke {
    scenario: String,
    cells: usize,
    peak_slices: usize,
    slice_slots: usize,
    sla_violation_percent: f64,
    migrations: usize,
    fleet_admissions_granted: usize,
    fleet_admissions_denied: usize,
}

/// The schema of the emitted metrics file.
#[derive(Serialize)]
struct MetricsFile {
    schema: String,
    seed: u64,
    scenarios: Vec<ScenarioReport>,
    fleet_scenarios: Vec<FleetSmoke>,
}

struct Args {
    names: Vec<String>,
    file: Option<String>,
    dump: Option<String>,
    list: bool,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        names: Vec::new(),
        file: None,
        dump: None,
        list: false,
        seed: 0,
        out: "SCENARIO_metrics.json".to_string(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => args.list = true,
            "--file" => {
                args.file = Some(iter.next().ok_or("--file needs a path")?);
            }
            "--dump" => {
                args.dump = Some(iter.next().ok_or("--dump needs a scenario name")?);
            }
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
            }
            "--out" => {
                args.out = iter.next().ok_or("--out needs a path")?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            name => args.names.push(name.to_string()),
        }
    }
    Ok(args)
}

fn print_report(report: &ScenarioReport) {
    println!(
        "  {:<20} {:>4} slots  {:>3} episodes  {:>6.1}% violations  {:>5.2} rounds/slot  \
         {:>8.0} slice-slots/s  {:>7.0} ms",
        report.scenario,
        report.total_slots,
        report.slice_episodes,
        report.sla_violation_percent,
        report.avg_coordination_rounds,
        report.slice_slots_per_second,
        report.wall_clock_ms,
    );
    for s in &report.slices {
        let lifetime = match s.torn_down_at_slot {
            Some(t) => format!("slots {}..{}", s.admitted_at_slot, t),
            None => format!("slots {}..end", s.admitted_at_slot),
        };
        println!(
            "    slice {:>2} {:<4} {:<14} {:>2} episodes  {:>2} violations  {:>2} updates  \
             usage {:>5.1}%",
            s.id,
            s.kind.name(),
            lifetime,
            s.episodes,
            s.violations,
            s.policy_updates,
            s.avg_usage_percent,
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("scenario_runner: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        println!("built-in scenarios:");
        for scenario in builtin::all() {
            println!("  {:<20} {}", scenario.name, scenario.description);
        }
        println!("built-in fleet scenarios (run on a 2-cell elastic fleet):");
        for scenario in fleet::all_fleet_builtins() {
            println!("  {:<20} {}", scenario.name, scenario.description);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &args.dump {
        match builtin::by_name(name) {
            Some(scenario) => {
                println!("{}", scenario.to_json());
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!("scenario_runner: no built-in scenario named `{name}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut fleet_scenarios: Vec<fleet::FleetScenario> = Vec::new();
    if let Some(path) = &args.file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("scenario_runner: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match Scenario::from_json(&text) {
            Ok(s) => scenarios.push(s),
            Err(e) => {
                eprintln!("scenario_runner: invalid scenario file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.file.is_none() && args.names.is_empty() {
        scenarios = builtin::all();
        fleet_scenarios = fleet::all_fleet_builtins();
    }
    for name in &args.names {
        if let Some(s) = builtin::by_name(name) {
            scenarios.push(s);
        } else if let Some(f) = fleet::fleet_by_name(name) {
            fleet_scenarios.push(f);
        } else {
            eprintln!("scenario_runner: no built-in scenario named `{name}` (try --list)");
            return ExitCode::FAILURE;
        }
    }

    let config = ScenarioConfig {
        seed: args.seed,
        ..ScenarioConfig::default()
    };
    println!(
        "scenario_runner: {} scenario(s), seed {}",
        scenarios.len(),
        args.seed
    );
    let mut reports = Vec::new();
    let mut nan_failures = 0usize;
    for scenario in scenarios {
        let mut engine = match ScenarioEngine::new(scenario, config) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("scenario_runner: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = engine.run();
        print_report(&report);
        if report.has_non_finite() {
            eprintln!(
                "scenario_runner: scenario `{}` reported non-finite metrics",
                report.scenario
            );
            nan_failures += 1;
        }
        reports.push(report);
    }

    // Fleet scenarios run on a 2-cell elastic fleet with the default
    // balancer — the smoke check that migration and fleet admission stay
    // healthy end to end.
    let mut fleet_reports = Vec::new();
    for fleet_scenario in fleet_scenarios {
        let cells = fleet_scenario.min_cells.max(2);
        let runner = match ElasticFleetRunner::new(
            fleet_scenario,
            ElasticFleetConfig::new(cells).with_seed(args.seed),
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("scenario_runner: {e}");
                return ExitCode::FAILURE;
            }
        };
        let outcome = match runner.run() {
            Ok(o) => o,
            Err(e) => {
                eprintln!("scenario_runner: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = &outcome.report;
        println!(
            "  {:<20} {:>2} cells  {:>4} slice-slots  {:>6.1}% violations  {} migrations  \
             {}+{} fleet admissions",
            report.scenario,
            report.cells,
            report.slice_slots,
            report.sla_violation_percent,
            report.migrations.len(),
            report.fleet_admissions_granted,
            report.fleet_admissions_denied,
        );
        if report.has_non_finite() {
            eprintln!(
                "scenario_runner: fleet scenario `{}` reported non-finite metrics",
                report.scenario
            );
            nan_failures += 1;
        }
        fleet_reports.push(FleetSmoke {
            scenario: report.scenario.clone(),
            cells: report.cells,
            peak_slices: report.peak_slices,
            slice_slots: report.slice_slots,
            sla_violation_percent: report.sla_violation_percent,
            migrations: report.migrations.len(),
            fleet_admissions_granted: report.fleet_admissions_granted,
            fleet_admissions_denied: report.fleet_admissions_denied,
        });
    }

    let payload = serde_json::to_string_pretty(&MetricsFile {
        schema: "onslicing-scenario-metrics/2".to_string(),
        seed: args.seed,
        scenarios: reports,
        fleet_scenarios: fleet_reports,
    })
    .expect("report serialization cannot fail");
    if let Err(e) = std::fs::write(&args.out, &payload) {
        eprintln!("scenario_runner: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);
    if nan_failures > 0 {
        eprintln!("scenario_runner: {nan_failures} scenario(s) reported non-finite metrics");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
