//! Table 1 — test performance of OnSlicing, OnRL, Baseline and Model_Based
//! after the online learning phase (average resource usage and SLA
//! violation).
//!
//! Paper reference values: OnSlicing 20.19 % / 0.00 %, OnRL 23.08 % / 15.40 %,
//! Baseline 52.18 % / 0.00 %, Model_Based 59.04 % / 3.13 %.

use onslicing_bench::{
    evaluate_model_based, evaluate_rule_based, print_method_table, run_learning_method, RunScale,
};
use onslicing_core::{AgentConfig, CoordinationMode};

fn main() {
    let scale = RunScale::from_args();
    let (onslicing, _) = run_learning_method(
        "OnSlicing",
        AgentConfig::onslicing(),
        CoordinationMode::default(),
        scale,
        1,
    );
    let (onrl, _) = run_learning_method(
        "OnRL",
        AgentConfig::onrl(),
        CoordinationMode::Projection,
        scale,
        2,
    );
    let (baseline, _) = evaluate_rule_based(scale, 3);
    let (model_based, _) = evaluate_model_based(scale, 4);
    print_method_table(
        "Table 1: test performance after the online learning phase",
        &[onslicing, onrl, baseline, model_based],
    );
    println!(
        "\nPaper reference: OnSlicing 20.19/0.00, OnRL 23.08/15.40, Baseline 52.18/0.00, Model_Based 59.04/3.13"
    );
}
