//! Fig. 3 (a, b) — the motivation experiment: an unconstrained DRL agent with
//! a fixed penalty weight violates the slices' SLA heavily during online
//! learning and needs many epochs to approach the rule-based policy, while
//! the baseline never violates.

use onslicing_bench::{evaluate_rule_based, print_learning_curve, run_learning_method, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode};

fn main() {
    let scale = RunScale::from_args();
    let (_, unsafe_curve) = run_learning_method(
        "Unsafe DRL",
        AgentConfig::unsafe_drl(),
        CoordinationMode::Projection,
        scale,
        41,
    );
    let (baseline_row, _) = evaluate_rule_based(scale, 42);

    print_learning_curve(
        "Fig. 3: unsafe DRL (fixed penalty, no safety mechanisms)",
        &unsafe_curve,
    );
    println!(
        "\nBaseline reference (flat across epochs): usage {:.2}%, violation {:.2}%",
        baseline_row.usage_percent, baseline_row.violation_percent
    );
    let max_violation = unsafe_curve
        .iter()
        .map(|m| m.violation_percent)
        .fold(0.0_f64, f64::max);
    println!(
        "\nUnsafe DRL peak violation during learning: {max_violation:.1}% (paper observes >30%)"
    );
}
