//! Fig. 14 — slice resource usage and SLA violation under *fixed*
//! coordinating parameters β applied to every resource: larger prices make
//! the action modifier hand back more resources (usage drops), eventually at
//! the expense of slice performance.

use onslicing_bench::{build_deployment, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode, EpochMetrics};

fn main() {
    let scale = RunScale::from_args();
    println!("\n=== Fig. 14: usage and violation under fixed coordinating parameters ===");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>18}",
        "beta", "MAR use%", "HVS use%", "RDC use%", "avg violation (%)"
    );
    for beta in [0.0, 0.25, 0.5, 0.75] {
        let mut orch = build_deployment(
            AgentConfig::onslicing(),
            // Single round so the pinned betas are what the modifier sees.
            CoordinationMode::Modifier {
                max_rounds: 1,
                warm_start: true,
            },
            scale,
            101,
        );
        orch.offline_pretrain_all(scale.pretrain_episodes);
        // Pin every resource's beta; warm start keeps it in effect (the dual
        // update drifts it, so re-pin before each episode).
        let mut episodes = Vec::new();
        let mut per_slice = [0.0f64; 3];
        let mut n = 0usize;
        for _ in 0..scale.eval_episodes {
            orch.domains_mut().set_all_betas(beta);
            let ep = orch.run_episode(false);
            for (i, s) in ep.slices.iter().enumerate() {
                per_slice[i] += s.avg_usage_percent;
            }
            n += 1;
            episodes.push(ep);
        }
        let agg = EpochMetrics::from_episodes(&episodes);
        println!(
            "{:<10.2} {:>12.2} {:>12.2} {:>12.2} {:>18.2}",
            beta,
            per_slice[0] / n as f64,
            per_slice[1] / n as f64,
            per_slice[2] / n as f64,
            agg.violation_percent
        );
    }
    println!("\nPaper shape: usage decreases monotonically as the fixed parameters grow.");
}
