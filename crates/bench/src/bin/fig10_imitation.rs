//! Fig. 10 — offline imitation learning from the baseline: the behaviour-
//! cloning loss (and the implied resource usage of the cloned policy)
//! approaches the baseline over the offline epochs, for each of the three
//! slices.

use onslicing_bench::{build_deployment, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode};

fn main() {
    let scale = RunScale::from_args();
    let mut orch = build_deployment(
        AgentConfig::onslicing(),
        CoordinationMode::default(),
        scale,
        61,
    );
    println!("\n=== Fig. 10: offline imitation from the baseline ===");
    // Pre-train each agent individually so we can print its BC curve and the
    // usage of the demonstrations it imitated.
    let kinds: Vec<_> = orch.env().envs().iter().map(|e| e.kind()).collect();
    for (i, _kind) in kinds.iter().enumerate() {
        // Split borrows: temporarily move the environment out of the bundle.
        let mut env = orch.env().envs()[i].clone();
        let report = orch.agents_mut()[i].offline_pretrain(&mut env, scale.pretrain_episodes);
        println!(
            "\n{} — baseline demonstration usage: {:.2}% ({} transitions)",
            kinds[i], report.baseline_usage_percent, report.num_demonstrations
        );
        println!("{:<8} {:>18}", "epoch", "BC loss (Eq. 15)");
        for (e, loss) in report.bc_losses.iter().enumerate() {
            println!("{e:<8} {loss:>18.6}");
        }
    }
    println!("\nPaper shape: the cloned policies' usage approaches the baseline's within ~8 offline epochs.");
}
