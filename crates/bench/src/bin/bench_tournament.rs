//! Emits `BENCH_tournament.json` — the balance-policy tournament matrix:
//! every registered balance policy runs every built-in fleet scenario at a
//! fixed shape (2 cells, seed 0) and the deterministic outcome metrics are
//! recorded per cell of the matrix.
//!
//! Every reported metric is a pure function of the seed — fleet SLA
//! violation %, average per-slice-slot cost, migration count, admission
//! counters — so the committed baseline under `baselines/` is compared
//! **exactly** by `bench_regress` (its key classifier puts `violation` and
//! `cost` metrics in the exact class): any drift in any policy's plan on
//! any scenario fails CI, the same contract the goldens enforce for traces.
//!
//! The per-policy `leaderboard` aggregates the matrix (mean SLA% and mean
//! cost across scenarios) — the standing, CI-judged comparison ROADMAP
//! item 4 calls for. The `diurnal-fleet` scenario is scripted so that a
//! forecast-driven policy can act a window ahead of a reactive one; the
//! fleet test `tournament_has_a_non_greedy_winner_on_diurnal_fleet` holds
//! the "prediction can actually win" claim.
//!
//! ```sh
//! cargo run --release --bin bench_tournament
//! cargo run --release --bin bench_tournament -- --out BENCH_tournament.json --cells 2 --seed 0
//! ```
//!
//! Exit codes: 0 = ok, 1 = non-finite metrics, 2 = usage/setup error.

use std::process::ExitCode;

use serde::Serialize;

use onslicing_fleet::{BalancerConfig, ElasticFleetConfig, ElasticFleetRunner, BALANCE_POLICIES};
use onslicing_scenario::all_fleet_builtins;

/// One cell of the tournament matrix: what one policy did on one scenario.
/// Every field is deterministic for the seed, so the regression gate holds
/// each one exactly.
#[derive(Serialize)]
struct MatrixCell {
    sla_violation_percent: f64,
    avg_slot_cost: f64,
    violations: usize,
    slice_episodes: usize,
    migrations: usize,
    fleet_admissions_granted: usize,
    fleet_admissions_denied: usize,
}

/// One policy's aggregate over every scenario — the leaderboard row.
#[derive(Serialize)]
struct LeaderboardRow {
    policy: String,
    mean_sla_violation_percent: f64,
    mean_avg_slot_cost: f64,
    total_migrations: usize,
}

#[derive(Serialize)]
struct TournamentFile {
    schema: String,
    cells: usize,
    seed: u64,
    balancers: Vec<String>,
    scenarios: Vec<String>,
    /// `matrix[policy][scenario]` — nested objects so the regression gate's
    /// dotted keys read `matrix.predictive.diurnal-fleet.sla_violation_percent`.
    matrix: Vec<(String, Vec<(String, MatrixCell)>)>,
    leaderboard: Vec<LeaderboardRow>,
}

// The vendored serde derives tuples as two-element arrays; emit the nested
// maps as real JSON objects instead so the regression gate keys stay
// human-readable.
fn matrix_value(matrix: &[(String, Vec<(String, MatrixCell)>)]) -> serde::Value {
    serde::Value::Obj(
        matrix
            .iter()
            .map(|(policy, row)| {
                (
                    policy.clone(),
                    serde::Value::Obj(
                        row.iter()
                            .map(|(scenario, cell)| (scenario.clone(), cell.serialize_value()))
                            .collect(),
                    ),
                )
            })
            .collect(),
    )
}

struct Options {
    out: String,
    cells: usize,
    seed: u64,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_tournament.json".to_string(),
        cells: 2,
        seed: 0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => opts.out = value("--out")?,
            "--cells" => {
                let v = value("--cells")?;
                opts.cells = v.parse().map_err(|_| format!("invalid --cells `{v}`"))?;
                if opts.cells < 2 {
                    return Err(
                        "--cells must be at least 2 (the built-ins need neighbors)".to_string()
                    );
                }
            }
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
            }
            other => {
                return Err(format!(
                    "unknown option `{other}`\nusage: bench_tournament [--out PATH] \
                     [--cells N] [--seed N]"
                ))
            }
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let opts = parse_options()?;
    let scenarios = all_fleet_builtins();
    println!(
        "bench_tournament: {} balancer(s) x {} scenario(s), {} cells, seed {}",
        BALANCE_POLICIES.len(),
        scenarios.len(),
        opts.cells,
        opts.seed
    );

    let mut matrix: Vec<(String, Vec<(String, MatrixCell)>)> = Vec::new();
    let mut leaderboard = Vec::new();
    for policy in BALANCE_POLICIES {
        let mut row: Vec<(String, MatrixCell)> = Vec::new();
        let (mut sla_sum, mut cost_sum, mut migrations_total) = (0.0, 0.0, 0usize);
        for scenario in &scenarios {
            let balancer = BalancerConfig {
                policy: onslicing_fleet::BalancePolicyName::parse(policy.name())
                    .expect("registered policy names parse"),
                ..BalancerConfig::default()
            };
            let outcome = ElasticFleetRunner::new(
                scenario.clone(),
                ElasticFleetConfig::new(opts.cells)
                    .with_seed(opts.seed)
                    .with_balancer(balancer),
            )?
            .run()?;
            let report = &outcome.report;
            // The tournament's standing invariant: no registered policy may
            // produce a non-finite metric on any built-in.
            if report.has_non_finite() {
                eprintln!(
                    "bench_tournament: non-finite metrics from `{}` on `{}`",
                    policy.name(),
                    scenario.name
                );
                return Ok(false);
            }
            println!(
                "  {:>10} x {:<14} {:6.2}% SLA violations, {:.4} avg slot cost, {} migration(s)",
                policy.name(),
                scenario.name,
                report.sla_violation_percent,
                report.avg_slot_cost,
                report.migrations.len()
            );
            sla_sum += report.sla_violation_percent;
            cost_sum += report.avg_slot_cost;
            migrations_total += report.migrations.len();
            row.push((
                scenario.name.clone(),
                MatrixCell {
                    sla_violation_percent: report.sla_violation_percent,
                    avg_slot_cost: report.avg_slot_cost,
                    violations: report.violations,
                    slice_episodes: report.slice_episodes,
                    migrations: report.migrations.len(),
                    fleet_admissions_granted: report.fleet_admissions_granted,
                    fleet_admissions_denied: report.fleet_admissions_denied,
                },
            ));
        }
        leaderboard.push(LeaderboardRow {
            policy: policy.name().to_string(),
            mean_sla_violation_percent: sla_sum / scenarios.len() as f64,
            mean_avg_slot_cost: cost_sum / scenarios.len() as f64,
            total_migrations: migrations_total,
        });
        matrix.push((policy.name().to_string(), row));
    }

    let file = TournamentFile {
        schema: "onslicing-tournament-bench/1".to_string(),
        cells: opts.cells,
        seed: opts.seed,
        balancers: BALANCE_POLICIES
            .iter()
            .map(|p| p.name().to_string())
            .collect(),
        scenarios: scenarios.iter().map(|s| s.name.clone()).collect(),
        matrix,
        leaderboard,
    };
    // Swap the tuple-derived matrix for the nested-object form.
    let mut value = file.serialize_value();
    if let serde::Value::Obj(pairs) = &mut value {
        for (k, v) in pairs.iter_mut() {
            if k == "matrix" {
                *v = matrix_value(&file.matrix);
            }
        }
    }
    let payload =
        serde_json::to_string_pretty(&value).expect("tournament serialization cannot fail");
    std::fs::write(&opts.out, &payload).map_err(|e| format!("cannot write {}: {e}", opts.out))?;
    println!("wrote {}", opts.out);
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bench_tournament: {e}");
            ExitCode::from(2)
        }
    }
}
