//! Table 4 — OnSlicing performance in 4G LTE versus 5G NSA with a fixed
//! MCS 9 (the paper's stabilized radio setting).
//!
//! Paper reference values: 5G NR 43.5 % usage / 0.00 % violation,
//! 4G LTE 45.9 % / 0.66 %.

use onslicing_bench::{print_method_table, MethodResult, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode, DeploymentBuilder};
use onslicing_netsim::{NetworkConfig, RanConfig};

fn run(name: &str, ran: RanConfig, scale: RunScale, seed: u64) -> MethodResult {
    let network = NetworkConfig::testbed_default().with_ran(ran);
    let mut orch = DeploymentBuilder::new()
        .network(network)
        .agent_config(AgentConfig::onslicing())
        .coordination(CoordinationMode::default())
        .episodes_per_epoch(scale.episodes_per_epoch)
        .scaled_down(scale.horizon)
        .seed(seed)
        .build();
    orch.offline_pretrain_all(scale.pretrain_episodes);
    orch.run_online(scale.online_epochs);
    let test = orch.evaluate(scale.eval_episodes);
    MethodResult {
        name: name.to_string(),
        usage_percent: test.avg_usage_percent,
        violation_percent: test.violation_percent,
    }
}

fn main() {
    let scale = RunScale::from_args();
    let rows = [
        run("5G NR (fixed MCS 9)", RanConfig::nr_fixed_mcs9(), scale, 31),
        run(
            "4G LTE (fixed MCS 9)",
            RanConfig::lte_fixed_mcs9(),
            scale,
            32,
        ),
    ];
    print_method_table("Table 4: OnSlicing in 4G LTE and 5G NSA", &rows);
    println!("\nPaper reference: 5G NR 43.5/0.00, 4G LTE 45.9/0.66");
}
