//! Fig. 19 — coordination overhead at scale: the average number of
//! agent↔domain-manager interactions per slot as the number of slices grows
//! (9 → 27 in the paper), with warm-started coordinating parameters.

use onslicing_bench::RunScale;
use onslicing_core::{
    AgentConfig, CoordinationMode, DeploymentBuilder, MultiSliceEnvironment, OnSlicingAgent,
    Orchestrator, OrchestratorConfig, RuleBasedBaseline, SliceEnvironment,
};
use onslicing_domains::DomainSet;
use onslicing_netsim::NetworkConfig;
use onslicing_slices::{Sla, SliceKind};

fn build_scaled(num_slices: usize, horizon: usize, seed: u64) -> Orchestrator {
    let network = NetworkConfig::testbed_default();
    let builder = DeploymentBuilder::new().scaled_down(horizon).seed(seed);
    let baselines = builder.calibrate_baselines();
    let mut envs = Vec::new();
    let mut agents = Vec::new();
    for i in 0..num_slices {
        let kind = SliceKind::ALL[i % 3];
        envs.push(SliceEnvironment::new(kind, network, seed + i as u64));
        let baseline: RuleBasedBaseline = baselines[i % 3].clone();
        let mut cfg = AgentConfig::onslicing().scaled_down(horizon);
        cfg.horizon = envs[i].horizon();
        agents.push(OnSlicingAgent::new(
            kind,
            Sla::for_kind(kind),
            baseline,
            cfg,
            seed + 100 + i as u64,
        ));
    }
    // The infrastructure grows with the number of slices (the paper's
    // large-scale emulation adds capacity as it adds slices): one "cell
    // worth" of every resource per three slices.
    let capacity = (num_slices as f64 / 3.0).max(1.0);
    Orchestrator::new(
        MultiSliceEnvironment::from_envs(envs),
        agents,
        DomainSet::with_parameters(capacity, 1.0),
        OrchestratorConfig {
            coordination: CoordinationMode::default(),
            episodes_per_epoch: 1,
        },
    )
}

fn main() {
    let scale = RunScale::from_args();
    println!("\n=== Fig. 19: coordination interactions vs number of slices ===");
    println!("{:<14} {:>20}", "num. slices", "interactions / slot");
    for num_slices in [9usize, 15, 21, 27] {
        let mut orch = build_scaled(num_slices, 12.min(scale.horizon), 400 + num_slices as u64);
        orch.offline_pretrain_all(1);
        let ep = orch.run_episode(false);
        println!("{:<14} {:>20.2}", num_slices, ep.avg_interactions);
    }
    println!("\nPaper shape: the interaction count stays low (≈2–3) as the slice count grows, thanks to warm-started β.");
}
