//! Fig. 16 — CDF of ping delay between the devices and the SPGW-U in 4G LTE
//! and 5G NR. The paper measures average RTTs of 27.99 ms (LTE) and 11.99 ms
//! (NR).

use onslicing_bench::{empirical_cdf, print_series};
use onslicing_netsim::{NetworkConfig, NetworkSimulator};

fn main() {
    let n = 500;
    let mut lte = NetworkSimulator::new(NetworkConfig::testbed_default().with_seed(7));
    let mut nr = NetworkSimulator::new(NetworkConfig::testbed_nr().with_seed(7));
    let lte_samples: Vec<f64> = (0..n).map(|_| lte.ping_rtt_ms()).collect();
    let nr_samples: Vec<f64> = (0..n).map(|_| nr.ping_rtt_ms()).collect();

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("\n=== Fig. 16: ping delay in LTE and NR ===");
    println!(
        "LTE average RTT: {:.2} ms (paper: 27.99 ms)",
        avg(&lte_samples)
    );
    println!(
        "NR  average RTT: {:.2} ms (paper: 11.99 ms)",
        avg(&nr_samples)
    );

    let decimate = |cdf: Vec<(f64, f64)>| -> Vec<(f64, f64)> {
        cdf.into_iter().step_by((n / 20).max(1)).collect()
    };
    print_series(
        "LTE ping CDF",
        "RTT (ms)",
        "P",
        &decimate(empirical_cdf(&lte_samples)),
    );
    print_series(
        "NR ping CDF",
        "RTT (ms)",
        "P",
        &decimate(empirical_cdf(&nr_samples)),
    );
}
