//! Fig. 12 — a showcase of the proactive baseline switching mechanism within
//! one episode: when a slice's cost spikes, the agent hands the rest of the
//! episode to the baseline and the resource usage jumps accordingly.
//!
//! To make the switch observable deterministically, the HVS agent is left
//! *unimitated* (it acts from a fresh policy), so its cost accumulates early
//! in the episode and the switching rule fires; the other two agents are
//! pre-trained as usual.

use onslicing_bench::{build_deployment, RunScale};
use onslicing_core::{AgentConfig, CoordinationMode};

fn main() {
    let scale = RunScale::from_args();
    let mut orch = build_deployment(
        AgentConfig::onslicing_ne(),
        CoordinationMode::default(),
        scale,
        81,
    );
    // Pre-train MAR and RDC only; leave HVS (index 1) untrained so it
    // misbehaves and triggers the switch.
    for i in [0usize, 2usize] {
        let mut env = orch.env().envs()[i].clone();
        orch.agents_mut()[i].offline_pretrain(&mut env, scale.pretrain_episodes);
    }

    orch.env_mut().reset_all();
    let horizon = orch.env().envs()[0].horizon();
    println!("\n=== Fig. 12: proactive baseline switching showcase (HVS slice) ===");
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>10}",
        "slot", "usage (%)", "cost", "cum. cost", "baseline?"
    );
    for slot in 0..horizon {
        let outcome = orch.run_slot(true);
        let hvs_action = outcome.executed[1];
        let hvs_used_baseline = outcome.decisions[1].used_baseline;
        let env = &orch.env().envs()[1];
        // The environment has already advanced; read its running totals.
        let cum = env.cumulative_cost();
        let cost = if slot == 0 { cum } else { f64::NAN };
        let _ = cost;
        println!(
            "{:<8} {:>12.2} {:>10.3} {:>12.3} {:>10}",
            slot,
            hvs_action.resource_usage_percent(),
            env.state().prev_cost,
            cum,
            if hvs_used_baseline { "yes" } else { "no" }
        );
    }
    println!("\nPaper shape: once the cost budget is threatened, the baseline takes over and the usage steps up (~20% → ~35%).");
}
