//! Emits `BENCH_scenario.json` — the machine-readable record of scenario
//! throughput, tracked across PRs alongside `BENCH_hotpath.json`.
//!
//! Measures the full episode wall-clock of the two workload extremes:
//!
//! * `steady` — the paper's three-slice stationary setting;
//! * `stress-many-slices` — 12 cloned slices on a 4× infrastructure, the
//!   deployment that exercises the per-slice rayon fan-out.
//!
//! For each it reports the median wall-clock of one full scenario run and
//! the derived per-slice-slot latency, plus the ratio of the two per-slot
//! latencies (`stress_per_slot / steady_per_slot`; values near or below 1.0
//! mean the fan-out absorbs the 4× slice count).
//!
//! Usage: `cargo run --release --bin bench_scenario [output-path]`
//! (default output: `BENCH_scenario.json` in the current directory).

use serde::Serialize;

use onslicing_scenario::{builtin, Scenario, ScenarioConfig, ScenarioEngine};

#[derive(Serialize)]
struct ScenarioTiming {
    scenario: String,
    slices: usize,
    total_slots: usize,
    slice_slots: usize,
    median_run_ms: f64,
    ns_per_slice_slot: f64,
    sla_violation_percent: f64,
}

#[derive(Serialize)]
struct BenchFile {
    schema: String,
    threads: usize,
    samples: usize,
    timings: Vec<ScenarioTiming>,
    stress_vs_steady_per_slot: f64,
}

const SAMPLES: usize = 3;

fn measure(scenario: Scenario) -> ScenarioTiming {
    let config = ScenarioConfig::default();
    let mut runs_ms = Vec::with_capacity(SAMPLES);
    let mut last = None;
    for _ in 0..SAMPLES {
        // Engine construction (calibration, pre-training) stays outside the
        // timed region: the metric is the online scenario execution.
        let mut engine =
            ScenarioEngine::new(scenario.clone(), config).expect("built-in scenarios are valid");
        let start = std::time::Instant::now();
        let report = engine.run();
        runs_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
        last = Some(report);
    }
    runs_ms.sort_by(|a, b| a.partial_cmp(b).expect("NaN timing"));
    let median_run_ms = runs_ms[runs_ms.len() / 2];
    let report = last.expect("at least one sample ran");
    ScenarioTiming {
        scenario: scenario.name.clone(),
        slices: scenario.initial_slices.len(),
        total_slots: report.total_slots,
        slice_slots: report.slice_slots,
        median_run_ms,
        ns_per_slice_slot: median_run_ms * 1.0e6 / report.slice_slots.max(1) as f64,
        sla_violation_percent: report.sla_violation_percent,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scenario.json".to_string());
    println!("bench_scenario: timing steady vs stress-many-slices ...");

    let steady = measure(builtin::steady());
    println!(
        "  steady: {:.0} ms/run, {:.0} ns/slice-slot",
        steady.median_run_ms, steady.ns_per_slice_slot
    );
    let stress = measure(builtin::stress_many_slices());
    println!(
        "  stress-many-slices: {:.0} ms/run, {:.0} ns/slice-slot",
        stress.median_run_ms, stress.ns_per_slice_slot
    );

    let ratio = stress.ns_per_slice_slot / steady.ns_per_slice_slot.max(1e-9);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let payload = serde_json::to_string_pretty(&BenchFile {
        schema: "onslicing-scenario-bench/1".to_string(),
        threads,
        samples: SAMPLES,
        timings: vec![steady, stress],
        stress_vs_steady_per_slot: ratio,
    })
    .expect("bench serialization cannot fail");
    std::fs::write(&out_path, &payload).expect("failed to write the benchmark JSON");
    println!(
        "\nper-slice-slot latency ratio (stress / steady): {ratio:.2} \
         ({threads} thread(s); near or below 1.0 = the fan-out absorbs the slice count)"
    );
    println!("wrote {out_path}");
}
