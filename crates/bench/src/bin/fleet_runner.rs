//! Emits `BENCH_fleet.json` — the cells×slices scaling record of the
//! multi-cell fleet runner, tracked across PRs alongside
//! `BENCH_hotpath.json` and `BENCH_scenario.json`.
//!
//! Default mode runs the `fleet-soak` per-cell workload (12 slices plus
//! mid-run admission/burst/fault/teardown) at 1, 4 and 8 cells and reports
//! each point's fleet metrics: executed slice-slots, fleet-wide
//! SLA-violation %, deterministic cost percentiles, per-slot latency
//! p50/p90/p99, the machine throughput (slice-slots over the fleet's
//! wall clock on this host) and the **aggregate** throughput (the sum of
//! the cells' independent rates — the shared-nothing capacity that scales
//! with the cell count; see the `onslicing-fleet` crate docs). The headline
//! `aggregate_speedup_max_vs_min_cells` is the aggregate-rate ratio of the
//! largest point over the smallest one (1 cell in the default curve).
//!
//! **Reproducible schedule.** Curve mode pins `RAYON_NUM_THREADS=1` before
//! measuring: per-cell rates are then free of cross-cell contention and of
//! the host's core count, so the scaling curve — in particular the
//! aggregate-speedup ratio the CI gate holds to −15 % — compares
//! like-for-like across a 1-core container and a multi-core CI runner.
//! (Unpinned, the 1-cell point would absorb the whole machine through the
//! per-slice fan-out while the 8-cell points contend for it, collapsing
//! the ratio on big hosts.) Be clear about what that buys: under the
//! pinned schedule the ratio certifies the *shared-nothing capacity
//! model* — cells stay independent and their rates sum, which any
//! accidental cross-cell coupling (a global lock, a shared allocation
//! choke point) would break — while uniform per-cell slowdowns are caught
//! by the per-point rate floors, not by the ratio. Same-host parallel
//! *speedup* is deliberately not gated (it is a property of the runner's
//! core count, not of the code); the parallel execution path itself is
//! exercised by the fleet tests and by the determinism-gate mode below,
//! which leaves the pool width alone.
//!
//! **Rebalance comparison.** The bench file also pins the elastic-fleet
//! story: `hotspot-shift` at two cells with the balancer off (frozen
//! sharding) versus on. Every compared field is deterministic for the
//! fixed seed — SLA-violation percentages, episode/violation counts,
//! migrations — so the gate holds them exactly; the headline
//! `violation_reduction_points` is the balancer's fleet-wide SLA win.
//!
//! ```sh
//! # The committed scaling curve (1/4/8 cells × fleet-soak):
//! cargo run --release --bin fleet_runner
//! # Custom shape:
//! cargo run --release --bin fleet_runner -- --scenario stress-many-slices \
//!     --cells 1,2,4 --seed 7 --out BENCH_fleet.json
//! # Determinism-gate mode: write only the byte-deterministic fleet trace
//! # (compare across RAYON_NUM_THREADS settings with `cmp`):
//! cargo run --release --bin fleet_runner -- --trace-out fleet-trace.json --trace-cells 2
//! # Elastic determinism-gate mode: a migrating hotspot-shift fleet's
//! # trace (migrations included) must also be byte-stable:
//! cargo run --release --bin fleet_runner -- --fleet-scenario hotspot-shift \
//!     --trace-out elastic-trace.json --trace-cells 2 --balancer on
//! ```
//!
//! Exit codes: 0 = ok, 1 = non-finite metrics, 2 = usage/setup error.

use std::process::ExitCode;

use serde::Serialize;

use onslicing_fleet::{
    BalancerConfig, ElasticFleetConfig, ElasticFleetRunner, FleetConfig, FleetReport, FleetRunner,
};
use onslicing_scenario::{builtin, fleet_by_name, FleetScenario, FLEET_BUILTIN_NAMES};

#[derive(Serialize)]
struct CurvePoint {
    cells: usize,
    peak_slices: usize,
    slice_slots: usize,
    slice_episodes: usize,
    sla_violation_percent: f64,
    avg_cost: f64,
    avg_slot_cost: f64,
    cost_p50: f64,
    cost_p90: f64,
    cost_p99: f64,
    wall_clock_ms: f64,
    slice_slots_per_second: f64,
    aggregate_cell_slots_per_second: f64,
    slot_latency_p50_ms: f64,
    slot_latency_p90_ms: f64,
    slot_latency_p99_ms: f64,
}

impl CurvePoint {
    fn from_report(r: &FleetReport) -> Self {
        Self {
            cells: r.cells,
            peak_slices: r.peak_slices,
            slice_slots: r.slice_slots,
            slice_episodes: r.slice_episodes,
            sla_violation_percent: r.sla_violation_percent,
            avg_cost: r.avg_cost,
            avg_slot_cost: r.avg_slot_cost,
            cost_p50: r.cost_p50,
            cost_p90: r.cost_p90,
            cost_p99: r.cost_p99,
            wall_clock_ms: r.wall_clock_ms,
            slice_slots_per_second: r.slice_slots_per_second,
            aggregate_cell_slots_per_second: r.aggregate_cell_slots_per_second,
            slot_latency_p50_ms: r.slot_latency_p50_ms,
            slot_latency_p90_ms: r.slot_latency_p90_ms,
            slot_latency_p99_ms: r.slot_latency_p99_ms,
        }
    }
}

/// One arm of the rebalance comparison — deterministic fields only, so the
/// regression gate holds every one of them exactly.
#[derive(Serialize)]
struct RebalanceArm {
    sla_violation_percent: f64,
    violations: usize,
    slice_episodes: usize,
    migrations: usize,
    fleet_admissions_granted: usize,
    fleet_admissions_denied: usize,
}

impl RebalanceArm {
    fn from_report(r: &FleetReport) -> Self {
        Self {
            sla_violation_percent: r.sla_violation_percent,
            violations: r.violations,
            slice_episodes: r.slice_episodes,
            migrations: r.migrations.len(),
            fleet_admissions_granted: r.fleet_admissions_granted,
            fleet_admissions_denied: r.fleet_admissions_denied,
        }
    }
}

/// The elastic-fleet pin: frozen sharding vs live rebalancing on the
/// hotspot-shift fleet scenario.
#[derive(Serialize)]
struct RebalanceComparison {
    scenario: String,
    cells: usize,
    balancer_off: RebalanceArm,
    balancer_on: RebalanceArm,
    /// Off-minus-on fleet SLA-violation percentage points (> 0 = the
    /// balancer helps; pinned exactly by the gate).
    violation_reduction_points: f64,
}

#[derive(Serialize)]
struct BenchFile {
    schema: String,
    threads: usize,
    schedule: String,
    scenario: String,
    seed: u64,
    slices_per_cell_initial: usize,
    curve: Vec<CurvePoint>,
    aggregate_speedup_max_vs_min_cells: f64,
    rebalance_comparison: RebalanceComparison,
}

struct Options {
    scenario: String,
    cells: Vec<usize>,
    seed: u64,
    out: String,
    trace_out: Option<String>,
    trace_cells: usize,
    fleet_scenario: Option<String>,
    balancer_on: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        scenario: "fleet-soak".to_string(),
        cells: vec![1, 4, 8],
        seed: 0,
        out: "BENCH_fleet.json".to_string(),
        trace_out: None,
        trace_cells: 2,
        fleet_scenario: None,
        balancer_on: true,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => opts.scenario = value("--scenario")?,
            "--cells" => {
                let v = value("--cells")?;
                opts.cells = v
                    .split(',')
                    .map(|c| c.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("invalid --cells `{v}` (expect e.g. 1,4,8)"))?;
                if opts.cells.is_empty() || opts.cells.contains(&0) {
                    return Err("--cells entries must be positive".to_string());
                }
            }
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
            }
            "--out" => opts.out = value("--out")?,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--trace-cells" => {
                let v = value("--trace-cells")?;
                opts.trace_cells = v
                    .parse()
                    .map_err(|_| format!("invalid --trace-cells `{v}`"))?;
            }
            "--fleet-scenario" => opts.fleet_scenario = Some(value("--fleet-scenario")?),
            "--balancer" => {
                let v = value("--balancer")?;
                opts.balancer_on = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    _ => return Err(format!("invalid --balancer `{v}` (expect on|off)")),
                };
            }
            other => {
                return Err(format!(
                    "unknown option `{other}`\nusage: fleet_runner [--scenario NAME|PATH] \
                     [--cells 1,4,8] [--seed N] [--out PATH] \
                     [--trace-out PATH [--trace-cells N]] \
                     [--fleet-scenario NAME [--balancer on|off]]"
                ))
            }
        }
    }
    Ok(opts)
}

/// Runs a fleet scenario through the elastic runner.
fn run_elastic(
    fleet: &FleetScenario,
    cells: usize,
    seed: u64,
    balancer: BalancerConfig,
) -> Result<onslicing_fleet::FleetOutcome, String> {
    ElasticFleetRunner::new(
        fleet.clone(),
        ElasticFleetConfig::new(cells)
            .with_seed(seed)
            .with_balancer(balancer),
    )?
    .run()
}

fn run() -> Result<bool, String> {
    let opts = parse_options()?;

    if let Some(name) = &opts.fleet_scenario {
        // Elastic determinism-gate mode: run a fleet scenario through the
        // elastic runner and write only the byte-deterministic trace.
        let Some(fleet) = fleet_by_name(name) else {
            return Err(format!(
                "`{name}` is not a built-in fleet scenario (built-ins: {})",
                FLEET_BUILTIN_NAMES.join(", ")
            ));
        };
        let Some(trace_out) = &opts.trace_out else {
            return Err("--fleet-scenario needs --trace-out (elastic trace mode)".to_string());
        };
        let balancer = if opts.balancer_on {
            BalancerConfig::default()
        } else {
            BalancerConfig::disabled()
        };
        let outcome = run_elastic(&fleet, opts.trace_cells, opts.seed, balancer)?;
        if outcome.report.has_non_finite() {
            eprintln!("fleet_runner: non-finite metrics in the elastic trace run");
            return Ok(false);
        }
        outcome.trace.save(trace_out)?;
        println!(
            "elastic fleet trace: `{name}` × {} cells (seed {}, balancer {}, {} migrations) \
             -> {trace_out}",
            opts.trace_cells,
            opts.seed,
            if opts.balancer_on { "on" } else { "off" },
            outcome.report.migrations.len(),
        );
        return Ok(true);
    }

    let scenario = builtin::by_name_or_file(&opts.scenario)?;

    if let Some(trace_out) = &opts.trace_out {
        // Determinism-gate mode: one fleet, trace only, no timing fields.
        let runner = FleetRunner::new(
            scenario,
            FleetConfig::new(opts.trace_cells).with_seed(opts.seed),
        )?;
        let outcome = runner.run()?;
        if outcome.report.has_non_finite() {
            eprintln!("fleet_runner: non-finite metrics in the trace run");
            return Ok(false);
        }
        outcome.trace.save(trace_out)?;
        println!(
            "fleet trace: `{}` × {} cells (seed {}) -> {trace_out}",
            opts.scenario, opts.trace_cells, opts.seed
        );
        return Ok(true);
    }

    // Pin the measurement schedule (see the module docs): per-cell rates
    // must depend on neither the host's core count nor on cross-cell
    // contention, or the gated scaling ratio would be machine-shaped.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    println!(
        "fleet_runner: scaling `{}` over {:?} cells (single-thread pinned) ...",
        opts.scenario, opts.cells
    );
    let mut curve = Vec::with_capacity(opts.cells.len());
    for &cells in &opts.cells {
        let runner = FleetRunner::new(
            scenario.clone(),
            FleetConfig::new(cells).with_seed(opts.seed),
        )?;
        let outcome = runner.run()?;
        let report = &outcome.report;
        if report.has_non_finite() {
            eprintln!("fleet_runner: non-finite metrics at {cells} cell(s)");
            return Ok(false);
        }
        println!(
            "  {cells} cell(s): {} peak slices, {} slice-slots, \
             {:.1} slots/s machine, {:.1} slots/s aggregate, \
             {:.2}% SLA violations, slot p50/p99 {:.1}/{:.1} ms",
            report.peak_slices,
            report.slice_slots,
            report.slice_slots_per_second,
            report.aggregate_cell_slots_per_second,
            report.sla_violation_percent,
            report.slot_latency_p50_ms,
            report.slot_latency_p99_ms
        );
        curve.push(CurvePoint::from_report(report));
    }

    // Largest-cells point over smallest-cells point: a scaling collapse at
    // the widest point must show in the headline, not be masked by a
    // faster intermediate point.
    let base_rate = curve
        .iter()
        .min_by_key(|p| p.cells)
        .map(|p| p.aggregate_cell_slots_per_second)
        .expect("curve is non-empty");
    let wide_rate = curve
        .iter()
        .max_by_key(|p| p.cells)
        .map(|p| p.aggregate_cell_slots_per_second)
        .expect("curve is non-empty");
    let speedup = wide_rate / base_rate.max(1e-9);

    // The elastic-fleet pin: hotspot-shift at two cells, frozen vs live
    // rebalancing. All compared fields are deterministic for the seed.
    let hotspot = fleet_by_name("hotspot-shift").expect("hotspot-shift is a built-in");
    let off = run_elastic(&hotspot, 2, opts.seed, BalancerConfig::disabled())?;
    let on = run_elastic(&hotspot, 2, opts.seed, BalancerConfig::default())?;
    if off.report.has_non_finite() || on.report.has_non_finite() {
        eprintln!("fleet_runner: non-finite metrics in the rebalance comparison");
        return Ok(false);
    }
    let reduction = off.report.sla_violation_percent - on.report.sla_violation_percent;
    println!(
        "rebalance comparison (hotspot-shift, 2 cells): {:.2}% violations frozen vs {:.2}% \
         balanced ({} migrations, -{:.2} points)",
        off.report.sla_violation_percent,
        on.report.sla_violation_percent,
        on.report.migrations.len(),
        reduction
    );
    let rebalance_comparison = RebalanceComparison {
        scenario: hotspot.name.clone(),
        cells: 2,
        balancer_off: RebalanceArm::from_report(&off.report),
        balancer_on: RebalanceArm::from_report(&on.report),
        violation_reduction_points: reduction,
    };

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let payload = serde_json::to_string_pretty(&BenchFile {
        schema: "onslicing-fleet-bench/2".to_string(),
        threads,
        schedule: "single-thread-pinned (RAYON_NUM_THREADS=1 for reproducible gating)".to_string(),
        scenario: opts.scenario.clone(),
        seed: opts.seed,
        slices_per_cell_initial: scenario.initial_slices.len(),
        curve,
        aggregate_speedup_max_vs_min_cells: speedup,
        rebalance_comparison,
    })
    .expect("bench serialization cannot fail");
    std::fs::write(&opts.out, &payload).expect("failed to write the benchmark JSON");
    println!(
        "\naggregate throughput scaling (max vs smallest point): {speedup:.2}x \
         ({threads} thread(s) on this host, measurement pinned to 1)"
    );
    println!("wrote {}", opts.out);
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("fleet_runner: {e}");
            ExitCode::from(2)
        }
    }
}
