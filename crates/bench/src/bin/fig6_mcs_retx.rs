//! Fig. 6 — retransmission probability versus the per-slice MCS offset, for
//! both uplink and downlink. The paper measures an exponential decay from
//! ~10⁻¹ at offset 0 to ~10⁻⁵ at offset 10 (uplink).

use onslicing_netsim::ran::{retransmission_probability, Direction};

fn main() {
    println!("\n=== Fig. 6: MCS offset vs. retransmission probability ===");
    println!(
        "{:<12} {:>16} {:>16}",
        "MCS offset", "UL retx prob", "DL retx prob"
    );
    for offset in 0..=10u32 {
        let ul = retransmission_probability(Direction::Uplink, offset);
        let dl = retransmission_probability(Direction::Downlink, offset);
        println!("{offset:<12} {ul:>16.6e} {dl:>16.6e}");
    }
    println!("\nPaper shape: exponential decay over offsets 0–10, uplink about an order of magnitude above downlink.");
}
