//! Perf-regression gating of `BENCH_*.json` artifacts against committed
//! baselines.
//!
//! The benches (`bench_hotpath`, `bench_scenario`, `fleet_runner`) emit
//! machine-readable JSON; this module diffs a freshly produced file against
//! the committed copy under `baselines/` and decides whether the change is
//! a regression. Metrics are classified by key name:
//!
//! * **lower-is-better** (`*_ns`, `*_ms`, `ns_per_*`, `*latency*`,
//!   `*wall*`, `*sublinearity*`, `*_vs_*`) — latency-like; fails when the
//!   fresh value exceeds the baseline by more than the `slower` tolerance
//!   (default +35 %, generous because wall-clock metrics are noisy).
//! * **higher-is-better ratio** (`*speedup*`) — machine-normalized; fails
//!   when the fresh value drops below the baseline by more than the
//!   `speedup_loss` tolerance (default −15 %). Keys that also contain
//!   `fused` additionally carry the absolute [`FUSED_SPEEDUP_FLOOR`]: any
//!   value below 5.0 fails outright, so the fused-path advantage cannot be
//!   re-baselined away one tolerant PR at a time.
//! * **higher-is-better rate** (`*per_second*`) — an absolute throughput
//!   is the reciprocal of a latency, so it gets the reciprocal of the
//!   latency band: fresh ≥ baseline / (1 + `slower`), i.e. the same
//!   machine-speed headroom the `*_ns` metrics enjoy.
//! * **exact** (`*violation*`, `*cost*`, strings, booleans, and any number
//!   that is integer-valued on either side: counts, seeds, schema
//!   versions) — metrics the determinism contract pins for a fixed seed;
//!   fails on any drift beyond `1e-9`. A float metric matching no name
//!   rule is skipped (visibly, in the summary) rather than guessed at.
//! * **informational** (`threads`, `samples`, and wall-clock latency
//!   p90/p99 tails — one scheduler hiccup of a shared host moves a
//!   small-sample tail ±50 %) — tracked in the artifact, never compared.
//!
//! Structural drift (a metric appearing, disappearing, or an array
//! changing length) always fails: it means the bench schema changed and
//! the baseline must be regenerated intentionally via `--update`.

use serde::Value;

/// Relative/absolute tolerances of one comparison run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Allowed relative slowdown of lower-is-better metrics (0.35 = +35 %).
    pub slower: f64,
    /// Allowed relative loss of higher-is-better metrics (0.15 = −15 %).
    pub speedup_loss: f64,
    /// Absolute slack of exact metrics.
    pub exact_abs: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Self {
            slower: 0.35,
            speedup_loss: 0.15,
            exact_abs: 1e-9,
        }
    }
}

/// Absolute floor for `fused*speedup*` metrics: the in-place fused rework
/// must stay at least this many times faster than the reconstructed
/// per-slice path regardless of the committed baseline value.
pub const FUSED_SPEEDUP_FLOOR: f64 = 5.0;

/// How one metric is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Latency-like: fresh may not exceed baseline by more than `slower`
    /// of its magnitude.
    LowerIsBetter,
    /// Machine-normalized ratio (speedups): fresh may not drop below
    /// baseline by more than `speedup_loss` of its magnitude.
    HigherIsBetter,
    /// A speedup with an additional absolute floor
    /// ([`FUSED_SPEEDUP_FLOOR`]): the fused-path rework must stay at least
    /// that many times faster than the reconstructed per-slice path, no
    /// matter what the committed baseline says. Catches the failure mode a
    /// relative band cannot: a sequence of small regressions each inside
    /// the band, re-baselined one PR at a time, walking the fused path back
    /// to parity.
    HigherIsBetterWithFloor,
    /// Absolute throughput rate: the reciprocal of a latency, so it gets
    /// the reciprocal of the latency band — fresh ≥ baseline / (1 +
    /// slower). Tighter than that would couple the gate to the baseline
    /// machine's per-core speed more strictly than the latency metrics it
    /// mirrors.
    HigherIsBetterRate,
    /// Deterministic for a fixed seed: any drift fails.
    Exact,
    /// Machine property: never compared.
    Informational,
}

/// Classifies a metric by the last segment of its dotted path (array
/// indices stripped). Numbers that fall through every name rule are judged
/// `Exact` when integer-valued (counts) and `Informational` otherwise.
pub fn classify(path: &str) -> MetricClass {
    let key = path
        .rsplit('.')
        .next()
        .unwrap_or(path)
        .split('[')
        .next()
        .unwrap_or(path)
        .to_ascii_lowercase();
    if key == "threads" || key == "samples" {
        return MetricClass::Informational;
    }
    if key.contains("violation") || key.contains("cost") {
        return MetricClass::Exact;
    }
    // Wall-clock latency *tails* are tracked but not gated: a p90/p99 over
    // a few hundred slot samples moves ±50% on one scheduler hiccup of a
    // shared host, which no honest tolerance band absorbs. Medians are
    // stable and stay gated; the cost percentiles are seed-deterministic
    // and match the `cost` rule above, so they stay exact.
    if key.contains("latency") && (key.contains("p90") || key.contains("p99")) {
        return MetricClass::Informational;
    }
    if key.contains("speedup") {
        return if key.contains("fused") {
            MetricClass::HigherIsBetterWithFloor
        } else {
            MetricClass::HigherIsBetter
        };
    }
    if key.contains("per_second") || key.contains("per_sec") {
        return MetricClass::HigherIsBetterRate;
    }
    let latency_like = key.ends_with("_ns")
        || key.ends_with("_ms")
        || key.starts_with("ns_")
        || key.starts_with("ms_")
        || key.contains("_ns_")
        || key.contains("_ms_")
        || key.contains("latency")
        || key.contains("wall")
        || key.contains("sublinearity")
        || key.contains("_vs_");
    if latency_like {
        return MetricClass::LowerIsBetter;
    }
    MetricClass::Exact
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, Default)]
pub struct ComparisonReport {
    /// Human-readable description of every regression found.
    pub regressions: Vec<String>,
    /// Metrics actually compared.
    pub checked: usize,
    /// Paths skipped as informational.
    pub skipped: Vec<String>,
}

impl ComparisonReport {
    /// Whether the fresh artifact passes the gate.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn as_number(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn is_integer_valued(v: &Value) -> bool {
    match v {
        Value::Int(_) | Value::UInt(_) => true,
        Value::Float(f) => f.fract() == 0.0,
        _ => false,
    }
}

fn compare_leaf(
    path: &str,
    baseline: &Value,
    fresh: &Value,
    tol: &Tolerances,
    report: &mut ComparisonReport,
) {
    let class = classify(path);
    if class == MetricClass::Informational {
        report.skipped.push(path.to_string());
        return;
    }
    match (as_number(baseline), as_number(fresh)) {
        (Some(b), Some(f)) => {
            // A numeric metric with no latency/throughput name rule is
            // held exact when it is count-like — integer-valued on either
            // side (so a pinned count drifting to a fraction still fails).
            // Only a metric that is fractional in BOTH files and matches
            // no name rule is reported as skipped instead of risking a
            // spurious gate failure; the skip is visible in the summary.
            let class = if class == MetricClass::Exact
                && !path_names_deterministic_metric(path)
                && !is_integer_valued(baseline)
                && !is_integer_valued(fresh)
            {
                report.skipped.push(path.to_string());
                return;
            } else {
                class
            };
            report.checked += 1;
            // Tolerances scale with |baseline| so a signed metric (a
            // `*_vs_*` delta, say) is not judged against a band on the
            // wrong side of zero.
            match class {
                MetricClass::LowerIsBetter => {
                    let limit = b + b.abs() * tol.slower + 1e-6;
                    if f > limit {
                        report.regressions.push(format!(
                            "{path}: {f:.1} exceeds baseline {b:.1} by more than +{:.0}% \
                             (limit {limit:.1})",
                            tol.slower * 100.0
                        ));
                    }
                }
                MetricClass::HigherIsBetter => {
                    let limit = b - b.abs() * tol.speedup_loss - 1e-9;
                    if f < limit {
                        report.regressions.push(format!(
                            "{path}: {f:.3} falls below baseline {b:.3} by more than -{:.0}% \
                             (limit {limit:.3})",
                            tol.speedup_loss * 100.0
                        ));
                    }
                }
                MetricClass::HigherIsBetterWithFloor => {
                    let limit = b - b.abs() * tol.speedup_loss - 1e-9;
                    if f < limit {
                        report.regressions.push(format!(
                            "{path}: {f:.3} falls below baseline {b:.3} by more than -{:.0}% \
                             (limit {limit:.3})",
                            tol.speedup_loss * 100.0
                        ));
                    } else if f < FUSED_SPEEDUP_FLOOR {
                        report.regressions.push(format!(
                            "{path}: {f:.3} is below the absolute fused-speedup floor \
                             {FUSED_SPEEDUP_FLOOR:.1} (the fused path must stay ≥{FUSED_SPEEDUP_FLOOR:.0}x \
                             the per-slice path regardless of the baseline)"
                        ));
                    }
                }
                MetricClass::HigherIsBetterRate => {
                    // For a positive baseline this is b / (1 + slower);
                    // written magnitude-based so a negative baseline keeps
                    // the band on its own side of zero.
                    let limit = b - b.abs() * (tol.slower / (1.0 + tol.slower)) - 1e-9;
                    if f < limit {
                        report.regressions.push(format!(
                            "{path}: {f:.1} falls below baseline {b:.1} past the rate floor \
                             (limit {limit:.1} = baseline / {:.2})",
                            1.0 + tol.slower
                        ));
                    }
                }
                MetricClass::Exact | MetricClass::Informational => {
                    if (f - b).abs() > tol.exact_abs {
                        report.regressions.push(format!(
                            "{path}: {f} drifted from the pinned baseline {b} \
                             (deterministic metric; any drift fails)"
                        ));
                    }
                }
            }
        }
        _ => {
            // Non-numeric leaves (schema strings, flags) must match exactly.
            report.checked += 1;
            if baseline != fresh {
                report.regressions.push(format!(
                    "{path}: value changed from {baseline:?} to {fresh:?} \
                     (schema drift; rebaseline with --update if intentional)"
                ));
            }
        }
    }
}

/// Whether the key names a metric that is deterministic for a fixed seed
/// even though it is float-valued (SLA violation rates, cost statistics).
fn path_names_deterministic_metric(path: &str) -> bool {
    let key = path.rsplit('.').next().unwrap_or(path).to_ascii_lowercase();
    key.contains("violation") || key.contains("cost")
}

fn walk(
    path: &str,
    baseline: &Value,
    fresh: &Value,
    tol: &Tolerances,
    report: &mut ComparisonReport,
) {
    match (baseline, fresh) {
        (Value::Obj(b), Value::Obj(f)) => {
            for (key, bv) in b {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match f.iter().find(|(k, _)| k == key) {
                    Some((_, fv)) => walk(&child, bv, fv, tol, report),
                    None => report.regressions.push(format!(
                        "{child}: metric disappeared from the fresh artifact \
                         (schema drift; rebaseline with --update if intentional)"
                    )),
                }
            }
            for (key, _) in f {
                if !b.iter().any(|(k, _)| k == key) {
                    let child = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}.{key}")
                    };
                    report.regressions.push(format!(
                        "{child}: new metric absent from the baseline \
                         (rebaseline with --update to start tracking it)"
                    ));
                }
            }
        }
        (Value::Arr(b), Value::Arr(f)) => {
            if b.len() != f.len() {
                report.regressions.push(format!(
                    "{path}: series length changed from {} to {} entries",
                    b.len(),
                    f.len()
                ));
                return;
            }
            for (i, (bv, fv)) in b.iter().zip(f.iter()).enumerate() {
                walk(&format!("{path}[{i}]"), bv, fv, tol, report);
            }
        }
        _ => compare_leaf(path, baseline, fresh, tol, report),
    }
}

/// Compares a fresh bench artifact against its baseline.
pub fn compare_values(baseline: &Value, fresh: &Value, tol: &Tolerances) -> ComparisonReport {
    let mut report = ComparisonReport::default();
    walk("", baseline, fresh, tol, &mut report);
    report
}

/// Parses two JSON texts and compares them.
pub fn compare_json(
    baseline: &str,
    fresh: &str,
    tol: &Tolerances,
) -> Result<ComparisonReport, String> {
    let baseline: Value =
        serde_json::from_str(baseline).map_err(|e| format!("malformed baseline JSON: {e}"))?;
    let fresh: Value =
        serde_json::from_str(fresh).map_err(|e| format!("malformed fresh JSON: {e}"))?;
    Ok(compare_values(&baseline, &fresh, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
        "schema": "onslicing-hotpath-bench/1",
        "threads": 4,
        "batch": 64,
        "mlp_forward": { "per_sample_ns": 500000.0, "batched_ns": 120000.0, "speedup": 4.2 },
        "orchestrator_slot": [
            { "slices": 3, "ns_per_slot": 30000000.0 },
            { "slices": 9, "ns_per_slot": 90000000.0 }
        ],
        "orchestrator_sublinearity": 0.99,
        "sla_violation_percent": 2.7777777777
    }"#;

    fn fresh_with(f: impl Fn(&mut String)) -> String {
        let mut text = BASELINE.to_string();
        f(&mut text);
        text
    }

    #[test]
    fn identical_artifacts_pass() {
        let report = compare_json(BASELINE, BASELINE, &Tolerances::default()).unwrap();
        assert!(report.passed(), "regressions: {:?}", report.regressions);
        assert!(report.checked > 5);
        // `threads` is a machine property, never compared.
        assert!(report.skipped.iter().any(|p| p == "threads"));
    }

    #[test]
    fn faster_and_moderately_slower_runs_pass() {
        // 10% slower ns metric: within the +35% band.
        let fresh = fresh_with(|t| *t = t.replace("120000.0", "132000.0"));
        assert!(compare_json(BASELINE, &fresh, &Tolerances::default())
            .unwrap()
            .passed());
        // 50% faster: improvements always pass.
        let fresh = fresh_with(|t| *t = t.replace("120000.0", "60000.0"));
        assert!(compare_json(BASELINE, &fresh, &Tolerances::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn a_big_slowdown_fails_the_gate() {
        let fresh = fresh_with(|t| *t = t.replace("120000.0", "170000.0"));
        let report = compare_json(BASELINE, &fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions[0].contains("mlp_forward.batched_ns"));
    }

    #[test]
    fn a_speedup_loss_fails_the_gate() {
        // 4.2 -> 3.3 is a 21% loss, past the -15% band.
        let fresh = fresh_with(|t| *t = t.replace("\"speedup\": 4.2", "\"speedup\": 3.3"));
        let report = compare_json(BASELINE, &fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions[0].contains("speedup"));
        // A 5% loss stays inside the band.
        let fresh = fresh_with(|t| *t = t.replace("\"speedup\": 4.2", "\"speedup\": 4.0"));
        assert!(compare_json(BASELINE, &fresh, &Tolerances::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn sla_metrics_are_exact() {
        let fresh = fresh_with(|t| *t = t.replace("2.7777777777", "2.9"));
        let report = compare_json(BASELINE, &fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions[0].contains("sla_violation_percent"));
    }

    #[test]
    fn an_integer_count_drifting_to_a_fraction_fails() {
        // 9 -> 8.5: the fresh side is no longer integer-valued, but the
        // baseline pin makes the metric count-like, so the drift fails.
        let fresh = fresh_with(|t| *t = t.replace("\"slices\": 9", "\"slices\": 8.5"));
        let report = compare_json(BASELINE, &fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions[0].contains("orchestrator_slot[1].slices"));
    }

    #[test]
    fn counts_are_exact_and_arrays_are_walked() {
        let fresh = fresh_with(|t| *t = t.replace("\"slices\": 9", "\"slices\": 10"));
        let report = compare_json(BASELINE, &fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions[0].contains("orchestrator_slot[1].slices"));
        // A slot-latency regression inside the array is caught too.
        let fresh = fresh_with(|t| *t = t.replace("90000000.0", "140000000.0"));
        let report = compare_json(BASELINE, &fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions[0].contains("orchestrator_slot[1].ns_per_slot"));
    }

    #[test]
    fn sublinearity_growth_fails() {
        let fresh = fresh_with(|t| {
            *t = t.replace(
                "\"orchestrator_sublinearity\": 0.99",
                "\"orchestrator_sublinearity\": 1.5",
            )
        });
        let report = compare_json(BASELINE, &fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
    }

    #[test]
    fn schema_drift_fails_in_both_directions() {
        let fresh =
            fresh_with(|t| *t = t.replace("\"batch\": 64,", "\"batch\": 64, \"new_metric\": 1.0,"));
        let report = compare_json(BASELINE, &fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions[0].contains("new_metric"));
        let fresh = fresh_with(|t| *t = t.replace("\"batch\": 64,", ""));
        let report = compare_json(BASELINE, &fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions[0].contains("batch"));
        let fresh = fresh_with(|t| {
            *t = t.replace(
                "\"schema\": \"onslicing-hotpath-bench/1\"",
                "\"schema\": \"onslicing-hotpath-bench/2\"",
            )
        });
        assert!(!compare_json(BASELINE, &fresh, &Tolerances::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn classification_covers_the_emitted_key_families() {
        assert_eq!(
            classify("mlp_forward.per_sample_ns"),
            MetricClass::LowerIsBetter
        );
        assert_eq!(
            classify("timings[0].median_run_ms"),
            MetricClass::LowerIsBetter
        );
        assert_eq!(
            classify("timings[0].ns_per_slice_slot"),
            MetricClass::LowerIsBetter
        );
        assert_eq!(
            classify("curve[2].slot_latency_p50_ms"),
            MetricClass::LowerIsBetter
        );
        // Latency tails flake on shared hosts; tracked, not gated.
        assert_eq!(
            classify("curve[2].slot_latency_p99_ms"),
            MetricClass::Informational
        );
        assert_eq!(
            classify("cells_detail[0].slot_latency_p90_ms"),
            MetricClass::Informational
        );
        // Deterministic cost tails stay exact.
        assert_eq!(classify("curve[0].cost_p99"), MetricClass::Exact);
        assert_eq!(
            classify("curve[2].wall_clock_ms"),
            MetricClass::LowerIsBetter
        );
        assert_eq!(
            classify("stress_vs_steady_per_slot"),
            MetricClass::LowerIsBetter
        );
        assert_eq!(
            classify("orchestrator_sublinearity"),
            MetricClass::LowerIsBetter
        );
        assert_eq!(
            classify("ppo_minibatch_update.speedup"),
            MetricClass::HigherIsBetter
        );
        assert_eq!(
            classify("curve[0].aggregate_cell_slots_per_second"),
            MetricClass::HigherIsBetterRate
        );
        assert_eq!(
            classify("timings[1].slice_slots_per_second"),
            MetricClass::HigherIsBetterRate
        );
        assert_eq!(classify("sla_violation_percent"), MetricClass::Exact);
        assert_eq!(classify("curve[0].cost_p90"), MetricClass::Exact);
        assert_eq!(classify("threads"), MetricClass::Informational);
        assert_eq!(classify("samples"), MetricClass::Informational);
    }

    #[test]
    fn fused_speedups_carry_an_absolute_floor() {
        assert_eq!(
            classify("coordination_machinery.fused_speedup"),
            MetricClass::HigherIsBetterWithFloor
        );
        // Plain speedups are unaffected by the floor rule.
        assert_eq!(classify("mlp_forward.speedup"), MetricClass::HigherIsBetter);

        let baseline = r#"{ "coordination_machinery": { "fused_speedup": 13.0 } }"#;
        // A within-band dip stays comfortably above the floor: passes.
        let fresh = r#"{ "coordination_machinery": { "fused_speedup": 12.0 } }"#;
        assert!(compare_json(baseline, fresh, &Tolerances::default())
            .unwrap()
            .passed());
        // A big relative loss fails on the band.
        let fresh = r#"{ "coordination_machinery": { "fused_speedup": 9.0 } }"#;
        assert!(!compare_json(baseline, fresh, &Tolerances::default())
            .unwrap()
            .passed());
        // The floor binds even when the relative band would forgive: a 5.4
        // baseline re-baselined downward cannot sink below 5.0.
        let low_baseline = r#"{ "coordination_machinery": { "fused_speedup": 5.4 } }"#;
        let fresh = r#"{ "coordination_machinery": { "fused_speedup": 4.9 } }"#;
        let report = compare_json(low_baseline, fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions[0].contains("absolute fused-speedup floor"));
    }

    #[test]
    fn rates_get_the_reciprocal_of_the_latency_band() {
        // A rate metric mirrors a latency: -26% (= 1/1.35) passes where
        // the -15% speedup band would have failed, -30% fails.
        let baseline = r#"{ "rate_slots_per_second": 1000.0 }"#;
        let ok = r#"{ "rate_slots_per_second": 745.0 }"#;
        assert!(compare_json(baseline, ok, &Tolerances::default())
            .unwrap()
            .passed());
        let bad = r#"{ "rate_slots_per_second": 700.0 }"#;
        let report = compare_json(baseline, bad, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions[0].contains("rate_slots_per_second"));
    }

    #[test]
    fn unchanged_negative_metrics_pass_every_band() {
        // Signed metrics (a future `*_vs_*` delta) must not fail a
        // no-change run because the tolerance band flipped sides of zero.
        let baseline =
            r#"{ "drift_vs_reference": -10.0, "gain_speedup": -2.0, "neg_per_second": -5.0 }"#;
        let report = compare_json(baseline, baseline, &Tolerances::default()).unwrap();
        assert!(report.passed(), "regressions: {:?}", report.regressions);
        // And a genuine worsening of the negative latency-like delta fails.
        let worse =
            r#"{ "drift_vs_reference": -3.0, "gain_speedup": -2.0, "neg_per_second": -5.0 }"#;
        assert!(!compare_json(baseline, worse, &Tolerances::default())
            .unwrap()
            .passed());
    }
}
