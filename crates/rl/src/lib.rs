//! # onslicing-rl
//!
//! The reinforcement-learning substrate of the OnSlicing reproduction:
//! everything algorithmic that sits between the neural-network primitives
//! (`onslicing_nn`) and the orchestration logic (`onslicing_core`).
//!
//! * [`buffer`] — rollout storage, truncated-episode bootstrapping and
//!   generalized advantage estimation;
//! * [`ppo`] — the PPO-clip actor-critic used for policy `π_θ` (§3, "Smooth
//!   Policy Improvement");
//! * [`lagrangian`] — the constraint-aware reward shaping and dual update of
//!   Eq. 3–5;
//! * [`bc`] — offline behavior cloning from the rule-based baseline (Eq. 15);
//! * [`cost_estimator`] — the variational (Bayes-by-backprop) cost-value
//!   estimator `π_φ` behind the proactive baseline switching rule (Eq. 6–8).
//!
//! ```
//! use onslicing_rl::{LagrangianMultiplier, PpoAgent, PpoConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let agent = PpoAgent::new_small(4, 2, PpoConfig::default(), &mut rng);
//! let action = agent.act_deterministic(&[0.1, 0.2, 0.3, 0.4]);
//! assert!(action.iter().all(|a| (0.0..=1.0).contains(a)));
//!
//! let mut lambda = LagrangianMultiplier::onslicing_default(0.05);
//! assert!(lambda.update(0.2) > 1.0); // violations raise the multiplier
//! ```

pub mod bc;
pub mod buffer;
pub mod cost_estimator;
pub mod lagrangian;
pub mod ppo;

pub use bc::{behavior_clone, imitation_error, BcConfig, Demonstration};
pub use buffer::{compute_gae, RolloutBuffer, Transition};
pub use cost_estimator::{CostEstimatorConfig, CostToGoSample, CostValueEstimator};
pub use lagrangian::LagrangianMultiplier;
pub use ppo::{PpoAgent, PpoConfig, PpoUpdateScratch, PpoUpdateStats};
