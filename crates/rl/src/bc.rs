//! Behavior cloning from the rule-based baseline policy (paper §5, Eq. 15).
//!
//! Before going online, every OnSlicing agent is trained offline to imitate
//! the baseline policy on transitions the baseline collected from the real
//! network: policy `π_θ`'s mean network is regressed onto the baseline's
//! actions with an l2 loss,
//!
//! ```text
//! Loss = (1/|B|) Σ_n | π_b(s_n) − π_θ(s_n) |²              (Eq. 15)
//! ```
//!
//! so that the online phase starts with baseline-level performance instead of
//! learning from scratch (the early-stage failure mode shown in Fig. 3).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use onslicing_nn::{mse_loss, Adam, BatchWorkspace, GaussianPolicy, Matrix};

/// A state → baseline-action demonstration pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Demonstration {
    /// Flattened observation.
    pub state: Vec<f64>,
    /// The action the baseline policy took (each dimension in `[0, 1]`).
    pub action: Vec<f64>,
}

/// Hyper-parameters of the behavior-cloning pre-training stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BcConfig {
    /// Number of passes over the demonstration dataset.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate of the Adam optimizer.
    pub learning_rate: f64,
}

impl Default for BcConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 64,
            learning_rate: 1e-3,
        }
    }
}

/// Trains the policy's mean network to imitate the demonstrations.
///
/// Returns the mean l2 imitation loss after each epoch (a monotone-ish
/// decreasing curve is the offline imitation curve of Fig. 10).
///
/// # Panics
/// Panics if the dataset is empty or a demonstration's dimensions do not
/// match the policy.
pub fn behavior_clone<R: Rng + ?Sized>(
    policy: &mut GaussianPolicy,
    demonstrations: &[Demonstration],
    config: &BcConfig,
    rng: &mut R,
) -> Vec<f64> {
    assert!(
        !demonstrations.is_empty(),
        "behavior cloning needs at least one demonstration"
    );
    for d in demonstrations {
        assert_eq!(
            d.state.len(),
            policy.state_dim(),
            "demonstration state dimension mismatch"
        );
        assert_eq!(
            d.action.len(),
            policy.action_dim(),
            "demonstration action dimension mismatch"
        );
    }
    let n = demonstrations.len();
    let state_dim = policy.state_dim();
    let action_dim = policy.action_dim();
    let mut opt = Adam::new(policy.mean_net().num_parameters(), config.learning_rate);

    // Pack the demonstration set once; minibatches gather rows from it.
    let mut all_states = Matrix::zeros(n, state_dim);
    let mut all_actions = Matrix::zeros(n, action_dim);
    for (i, d) in demonstrations.iter().enumerate() {
        all_states.copy_row_from(i, &d.state);
        all_actions.copy_row_from(i, &d.action);
    }

    let mut ws = BatchWorkspace::new();
    let mut grad = Matrix::default();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        indices.shuffle(rng);
        let mut loss_sum = 0.0;
        for chunk in indices.chunks(config.batch_size.max(1)) {
            policy.mean_net_mut().zero_grad();
            let batch = chunk.len();
            let input = ws.input_mut(batch, state_dim);
            for (b, &i) in chunk.iter().enumerate() {
                input.copy_row_from(b, all_states.row(i));
            }
            grad.resize(batch, action_dim);
            {
                // One GEMM pass for the whole minibatch; the per-row mse
                // gradient is `2 (y − t) / (action_dim · batch)`, matching
                // the former per-sample `mse_grad(...) / batch`.
                let y = policy.mean_net().forward_batch_prefilled(&mut ws);
                let scale = 2.0 / (action_dim as f64 * batch as f64);
                for (b, &i) in chunk.iter().enumerate() {
                    loss_sum += mse_loss(y.row(b), all_actions.row(i));
                    for (g, (p, t)) in grad
                        .row_mut(b)
                        .iter_mut()
                        .zip(y.row(b).iter().zip(all_actions.row(i).iter()))
                    {
                        *g = scale * (p - t);
                    }
                }
            }
            policy.mean_net_mut().backward_batch(&grad, &mut ws);
            opt.step_set(policy.mean_net_mut());
        }
        epoch_losses.push(loss_sum / n as f64);
    }
    epoch_losses
}

/// Mean l2 imitation error of the policy on a demonstration set (no
/// training) — used to verify the clone quality before going online.
pub fn imitation_error(policy: &GaussianPolicy, demonstrations: &[Demonstration]) -> f64 {
    if demonstrations.is_empty() {
        return 0.0;
    }
    demonstrations
        .iter()
        .map(|d| mse_loss(&policy.mean_action(&d.state), &d.action))
        .sum::<f64>()
        / demonstrations.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use onslicing_nn::{Activation, Mlp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A synthetic "baseline": action = [s0, 1 - s0] clipped to [0.1, 0.9].
    fn synthetic_baseline(state: &[f64]) -> Vec<f64> {
        vec![state[0].clamp(0.1, 0.9), (1.0 - state[0]).clamp(0.1, 0.9)]
    }

    fn dataset(n: usize) -> Vec<Demonstration> {
        (0..n)
            .map(|i| {
                let s = vec![i as f64 / n as f64, (i % 7) as f64 / 7.0];
                Demonstration {
                    action: synthetic_baseline(&s),
                    state: s,
                }
            })
            .collect()
    }

    fn small_policy(seed: u64) -> GaussianPolicy {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Mlp::new(
            &[2, 32, 16, 2],
            Activation::Tanh,
            Activation::Sigmoid,
            &mut rng,
        );
        GaussianPolicy::from_mean_net(net, 2, 0.1)
    }

    #[test]
    fn cloning_reduces_the_imitation_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut policy = small_policy(1);
        let demos = dataset(256);
        let before = imitation_error(&policy, &demos);
        let losses = behavior_clone(
            &mut policy,
            &demos,
            &BcConfig {
                epochs: 30,
                batch_size: 32,
                learning_rate: 3e-3,
            },
            &mut rng,
        );
        let after = imitation_error(&policy, &demos);
        assert_eq!(losses.len(), 30);
        assert!(
            after < before,
            "imitation error should drop: {before} -> {after}"
        );
        assert!(
            after < 0.01,
            "cloned policy should be close to the baseline, got {after}"
        );
        // The loss curve should be (weakly) improving overall.
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn cloned_policy_reproduces_baseline_actions_pointwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut policy = small_policy(3);
        let demos = dataset(256);
        behavior_clone(
            &mut policy,
            &demos,
            &BcConfig {
                epochs: 40,
                batch_size: 32,
                learning_rate: 3e-3,
            },
            &mut rng,
        );
        let s = vec![0.42, 0.3];
        let target = synthetic_baseline(&s);
        let cloned = policy.mean_action(&s);
        for (c, t) in cloned.iter().zip(target.iter()) {
            assert!((c - t).abs() < 0.1, "cloned {c} vs baseline {t}");
        }
    }

    #[test]
    fn imitation_error_of_empty_dataset_is_zero() {
        let policy = small_policy(4);
        assert_eq!(imitation_error(&policy, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one demonstration")]
    fn cloning_an_empty_dataset_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut policy = small_policy(6);
        let _ = behavior_clone(&mut policy, &[], &BcConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn dimension_mismatch_is_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut policy = small_policy(8);
        let demos = vec![Demonstration {
            state: vec![0.0; 5],
            action: vec![0.5, 0.5],
        }];
        let _ = behavior_clone(&mut policy, &demos, &BcConfig::default(), &mut rng);
    }
}
