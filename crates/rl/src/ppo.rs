//! Proximal policy optimization with a clipped surrogate objective.
//!
//! The paper trains policy `π_θ` with PPO rather than DDPG because the
//! clipped surrogate prevents excessively large policy updates and produces
//! the smooth performance improvement the online setting needs (§3, "Smooth
//! Policy Improvement"). This is a from-scratch PPO-clip implementation on
//! top of the [`onslicing_nn`] primitives:
//!
//! * actor — a [`GaussianPolicy`] (Sigmoid mean head, learnable state-
//!   independent std);
//! * critic — an [`Mlp`] regressing the (shaped) return;
//! * generalized advantage estimation from the rollout buffer;
//! * multiple epochs of minibatch updates with ratio clipping and an entropy
//!   bonus.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use onslicing_nn::{Activation, Adam, GaussianPolicy, Mlp, PolicySample};

use crate::buffer::RolloutBuffer;

/// Hyper-parameters of the PPO learner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE λ.
    pub gae_lambda: f64,
    /// Clip range of the probability ratio.
    pub clip_epsilon: f64,
    /// Number of optimization epochs per update.
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch_size: usize,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Entropy bonus coefficient.
    pub entropy_coef: f64,
    /// Initial standard deviation of the Gaussian policy.
    pub initial_std: f64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_epsilon: 0.2,
            epochs: 8,
            minibatch_size: 64,
            actor_lr: 3e-4,
            critic_lr: 1e-3,
            entropy_coef: 1e-3,
            initial_std: 0.15,
        }
    }
}

/// Statistics of one PPO update (for logging and tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoUpdateStats {
    /// Number of transitions consumed.
    pub num_transitions: usize,
    /// Mean clipped-surrogate objective over the last epoch (higher is
    /// better).
    pub surrogate: f64,
    /// Mean critic loss over the last epoch.
    pub value_loss: f64,
    /// Fraction of samples whose ratio was clipped in the last epoch.
    pub clip_fraction: f64,
    /// Mean probability ratio in the last epoch.
    pub mean_ratio: f64,
}

/// A PPO actor-critic agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PpoAgent {
    config: PpoConfig,
    policy: GaussianPolicy,
    critic: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
}

impl PpoAgent {
    /// Creates an agent with the paper's network sizes for the given state
    /// and action dimensionality.
    pub fn new<R: Rng + ?Sized>(
        state_dim: usize,
        action_dim: usize,
        config: PpoConfig,
        rng: &mut R,
    ) -> Self {
        let policy = GaussianPolicy::new(state_dim, action_dim, config.initial_std, rng);
        let critic = Mlp::onslicing_default(state_dim, 1, Activation::Identity, rng);
        Self::from_parts(policy, critic, config)
    }

    /// Creates an agent with small networks (fast tests).
    pub fn new_small<R: Rng + ?Sized>(
        state_dim: usize,
        action_dim: usize,
        config: PpoConfig,
        rng: &mut R,
    ) -> Self {
        let mean = Mlp::new(&[state_dim, 32, 16, action_dim], Activation::Tanh, Activation::Sigmoid, rng);
        let policy = GaussianPolicy::from_mean_net(mean, action_dim, config.initial_std);
        let critic = Mlp::new(&[state_dim, 32, 16, 1], Activation::Tanh, Activation::Identity, rng);
        Self::from_parts(policy, critic, config)
    }

    /// Assembles an agent from an existing policy and critic (used after
    /// offline behavior cloning).
    pub fn from_parts(policy: GaussianPolicy, critic: Mlp, config: PpoConfig) -> Self {
        let actor_opt = Adam::new(policy.num_parameters(), config.actor_lr);
        let critic_opt = Adam::new(critic.num_parameters(), config.critic_lr);
        Self { config, policy, critic, actor_opt, critic_opt }
    }

    /// The learner's configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Immutable access to the policy.
    pub fn policy(&self) -> &GaussianPolicy {
        &self.policy
    }

    /// Mutable access to the policy (used by behavior cloning).
    pub fn policy_mut(&mut self) -> &mut GaussianPolicy {
        &mut self.policy
    }

    /// Immutable access to the critic.
    pub fn critic(&self) -> &Mlp {
        &self.critic
    }

    /// Samples a stochastic action.
    pub fn act<R: Rng + ?Sized>(&self, state: &[f64], rng: &mut R) -> PolicySample {
        self.policy.sample(state, rng)
    }

    /// The deterministic (mean) action.
    pub fn act_deterministic(&self, state: &[f64]) -> Vec<f64> {
        self.policy.mean_action(state)
    }

    /// Critic estimate of the (shaped) return from `state` — also used as the
    /// reward value function `R` that bootstraps truncated episodes.
    pub fn value(&self, state: &[f64]) -> f64 {
        self.critic.forward(state)[0]
    }

    /// Runs a full PPO update on the buffer's ready transitions.
    ///
    /// The buffer is left untouched (the caller clears it), so ablations can
    /// inspect it afterwards.
    pub fn update<R: Rng + ?Sized>(&mut self, buffer: &RolloutBuffer, rng: &mut R) -> PpoUpdateStats {
        let (transitions, _advantages, returns) = buffer.ready_batch();
        let advantages = buffer.normalized_advantages();
        let n = transitions.len();
        if n == 0 {
            return PpoUpdateStats {
                num_transitions: 0,
                surrogate: 0.0,
                value_loss: 0.0,
                clip_fraction: 0.0,
                mean_ratio: 1.0,
            };
        }
        let mut indices: Vec<usize> = (0..n).collect();
        let mut last_surrogate = 0.0;
        let mut last_value_loss = 0.0;
        let mut last_clip_fraction = 0.0;
        let mut last_mean_ratio = 1.0;

        for _epoch in 0..self.config.epochs {
            indices.shuffle(rng);
            let mut surrogate_sum = 0.0;
            let mut value_loss_sum = 0.0;
            let mut clipped = 0usize;
            let mut ratio_sum = 0.0;

            for chunk in indices.chunks(self.config.minibatch_size.max(1)) {
                self.policy.zero_grad();
                self.critic.zero_grad();
                let batch = chunk.len() as f64;
                for &i in chunk {
                    let t = &transitions[i];
                    let adv = advantages[i];
                    let ret = returns[i];

                    // ---- actor ----
                    let new_log_prob = self.policy.log_prob(&t.state, &t.raw_action);
                    let ratio = (new_log_prob - t.log_prob).exp();
                    let clip_lo = 1.0 - self.config.clip_epsilon;
                    let clip_hi = 1.0 + self.config.clip_epsilon;
                    let unclipped = ratio * adv;
                    let clipped_obj = ratio.clamp(clip_lo, clip_hi) * adv;
                    let surrogate = unclipped.min(clipped_obj);
                    surrogate_sum += surrogate;
                    ratio_sum += ratio;
                    // Gradient flows only when the unclipped branch is active.
                    let active = unclipped <= clipped_obj + 1e-12;
                    if active {
                        self.policy
                            .accumulate_log_prob_grad(&t.state, &t.raw_action, ratio * adv / batch);
                    } else {
                        clipped += 1;
                    }

                    // ---- critic ----
                    let v = self.critic.forward_train(&t.state)[0];
                    let err = v - ret;
                    value_loss_sum += err * err;
                    self.critic.backward(&[2.0 * err / batch]);
                }
                // Entropy bonus (per minibatch, not per sample).
                self.policy.accumulate_entropy_grad(self.config.entropy_coef);
                self.actor_opt.step(self.policy.param_grad_pairs());
                self.critic_opt.step(self.critic.param_grad_pairs());
            }
            last_surrogate = surrogate_sum / n as f64;
            last_value_loss = value_loss_sum / n as f64;
            last_clip_fraction = clipped as f64 / n as f64;
            last_mean_ratio = ratio_sum / n as f64;
        }

        PpoUpdateStats {
            num_transitions: n,
            surrogate: last_surrogate,
            value_loss: last_value_loss,
            clip_fraction: last_clip_fraction,
            mean_ratio: last_mean_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Transition;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A one-state continuous bandit: reward = 1 - (a0 - 0.7)^2 - (a1 - 0.2)^2.
    fn bandit_reward(action: &[f64]) -> f64 {
        1.0 - (action[0] - 0.7) * (action[0] - 0.7) - (action[1] - 0.2) * (action[1] - 0.2)
    }

    /// Collects `n` single-step bandit episodes (done after every step, so
    /// the advantage of an action reflects only that action's reward).
    fn collect_bandit_steps(
        agent: &PpoAgent,
        rng: &mut ChaCha8Rng,
        buffer: &mut RolloutBuffer,
        n: usize,
    ) {
        let state = vec![1.0, 0.0];
        for _ in 0..n {
            let sample = agent.act(&state, rng);
            let reward = bandit_reward(&sample.action);
            buffer.push(Transition {
                state: state.clone(),
                raw_action: sample.raw_action.clone(),
                action: sample.action.clone(),
                log_prob: sample.log_prob,
                reward,
                cost: 0.0,
                value: agent.value(&state),
                done: true,
            });
            buffer.finish_episode(0.0, agent.config().gamma, agent.config().gae_lambda);
        }
    }

    #[test]
    fn ppo_improves_a_continuous_bandit() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let config = PpoConfig {
            epochs: 4,
            minibatch_size: 32,
            actor_lr: 5e-3,
            critic_lr: 5e-3,
            ..PpoConfig::default()
        };
        let mut agent = PpoAgent::new_small(2, 2, config, &mut rng);
        let state = vec![1.0, 0.0];
        let before = bandit_reward(&agent.act_deterministic(&state));
        for _ in 0..60 {
            let mut buffer = RolloutBuffer::new();
            collect_bandit_steps(&agent, &mut rng, &mut buffer, 64);
            let stats = agent.update(&buffer, &mut rng);
            assert_eq!(stats.num_transitions, 64);
        }
        let after = bandit_reward(&agent.act_deterministic(&state));
        assert!(
            after > before + 0.05 || after > 0.95,
            "PPO failed to improve: before {before}, after {after}"
        );
        let a = agent.act_deterministic(&state);
        assert!((a[0] - 0.7).abs() < 0.2, "a0 {} should approach 0.7", a[0]);
        assert!((a[1] - 0.2).abs() < 0.2, "a1 {} should approach 0.2", a[1]);
    }

    #[test]
    fn update_on_an_empty_buffer_is_a_noop() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut agent = PpoAgent::new_small(2, 2, PpoConfig::default(), &mut rng);
        let buffer = RolloutBuffer::new();
        let stats = agent.update(&buffer, &mut rng);
        assert_eq!(stats.num_transitions, 0);
    }

    #[test]
    fn critic_learns_the_return_of_a_constant_reward() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let config = PpoConfig { epochs: 10, critic_lr: 5e-3, ..PpoConfig::default() };
        let mut agent = PpoAgent::new_small(2, 1, config, &mut rng);
        let state = vec![0.5, 0.5];
        for _ in 0..30 {
            let mut buffer = RolloutBuffer::new();
            for _ in 0..32 {
                let sample = agent.act(&state, &mut rng);
                buffer.push(Transition {
                    state: state.clone(),
                    raw_action: sample.raw_action.clone(),
                    action: sample.action.clone(),
                    log_prob: sample.log_prob,
                    reward: 1.0,
                    cost: 0.0,
                    value: agent.value(&state),
                    done: true, // single-step episodes: return is exactly 1
                });
                buffer.finish_episode(0.0, agent.config().gamma, agent.config().gae_lambda);
            }
            agent.update(&buffer, &mut rng);
        }
        let v = agent.value(&state);
        assert!((v - 1.0).abs() < 0.2, "critic value {v} should approach 1.0");
    }

    #[test]
    fn clip_fraction_and_ratio_are_reported() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut agent = PpoAgent::new_small(2, 2, PpoConfig { epochs: 6, ..PpoConfig::default() }, &mut rng);
        let mut buffer = RolloutBuffer::new();
        collect_bandit_steps(&agent, &mut rng, &mut buffer, 64);
        let stats = agent.update(&buffer, &mut rng);
        assert!((0.0..=1.0).contains(&stats.clip_fraction));
        assert!(stats.mean_ratio > 0.0);
        assert!(stats.value_loss >= 0.0);
    }

    #[test]
    fn deterministic_action_is_within_the_action_box() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let agent = PpoAgent::new_small(3, 4, PpoConfig::default(), &mut rng);
        let a = agent.act_deterministic(&[0.1, 0.2, 0.3]);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
