//! Proximal policy optimization with a clipped surrogate objective.
//!
//! The paper trains policy `π_θ` with PPO rather than DDPG because the
//! clipped surrogate prevents excessively large policy updates and produces
//! the smooth performance improvement the online setting needs (§3, "Smooth
//! Policy Improvement"). This is a from-scratch PPO-clip implementation on
//! top of the [`onslicing_nn`] primitives:
//!
//! * actor — a [`GaussianPolicy`] (Sigmoid mean head, learnable state-
//!   independent std);
//! * critic — an [`Mlp`] regressing the (shaped) return;
//! * generalized advantage estimation from the rollout buffer;
//! * multiple epochs of minibatch updates with ratio clipping and an entropy
//!   bonus.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use onslicing_nn::{Activation, Adam, BatchWorkspace, GaussianPolicy, Matrix, Mlp, PolicySample};

use crate::buffer::RolloutBuffer;

/// Hyper-parameters of the PPO learner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE λ.
    pub gae_lambda: f64,
    /// Clip range of the probability ratio.
    pub clip_epsilon: f64,
    /// Number of optimization epochs per update.
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch_size: usize,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Entropy bonus coefficient.
    pub entropy_coef: f64,
    /// Initial standard deviation of the Gaussian policy.
    pub initial_std: f64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_epsilon: 0.2,
            epochs: 8,
            minibatch_size: 64,
            actor_lr: 3e-4,
            critic_lr: 1e-3,
            entropy_coef: 1e-3,
            initial_std: 0.15,
        }
    }
}

/// Statistics of one PPO update (for logging and tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoUpdateStats {
    /// Number of transitions consumed.
    pub num_transitions: usize,
    /// Mean clipped-surrogate objective over the last epoch (higher is
    /// better).
    pub surrogate: f64,
    /// Mean critic loss over the last epoch.
    pub value_loss: f64,
    /// Fraction of samples whose ratio was clipped in the last epoch.
    pub clip_fraction: f64,
    /// Mean probability ratio in the last epoch.
    pub mean_ratio: f64,
}

/// Reusable buffers for [`PpoAgent::update`]: network workspaces, gathered
/// minibatch matrices and per-sample scalars. By default they live inside
/// the agent and persist across updates, so steady-state training
/// re-touches warm memory instead of faulting in fresh allocations every
/// epoch. Because all slice agents in a cell share one trunk shape, a
/// single scratch can also serve every agent of a cell in turn
/// ([`PpoAgent::update_with_scratch`]): the buffer dimensions never change
/// between agents, so the fused slot-update loop reallocates nothing.
#[derive(Debug, Clone, Default)]
pub struct PpoUpdateScratch {
    actor_ws: BatchWorkspace,
    critic_ws: BatchWorkspace,
    all_states: Matrix,
    all_raw: Matrix,
    mb_raw: Matrix,
    actor_grad: Matrix,
    critic_grad: Matrix,
    new_log_probs: Vec<f64>,
    weights: Vec<f64>,
    indices: Vec<usize>,
}

impl PpoUpdateScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A PPO actor-critic agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PpoAgent {
    config: PpoConfig,
    policy: GaussianPolicy,
    critic: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    /// Scratch memory only — never part of the agent's serialized state.
    #[serde(skip)]
    scratch: PpoUpdateScratch,
}

impl PpoAgent {
    /// Creates an agent with the paper's network sizes for the given state
    /// and action dimensionality.
    pub fn new<R: Rng + ?Sized>(
        state_dim: usize,
        action_dim: usize,
        config: PpoConfig,
        rng: &mut R,
    ) -> Self {
        let policy = GaussianPolicy::new(state_dim, action_dim, config.initial_std, rng);
        let critic = Mlp::onslicing_default(state_dim, 1, Activation::Identity, rng);
        Self::from_parts(policy, critic, config)
    }

    /// Creates an agent with small networks (fast tests).
    pub fn new_small<R: Rng + ?Sized>(
        state_dim: usize,
        action_dim: usize,
        config: PpoConfig,
        rng: &mut R,
    ) -> Self {
        let mean = Mlp::new(
            &[state_dim, 32, 16, action_dim],
            Activation::Tanh,
            Activation::Sigmoid,
            rng,
        );
        let policy = GaussianPolicy::from_mean_net(mean, action_dim, config.initial_std);
        let critic = Mlp::new(
            &[state_dim, 32, 16, 1],
            Activation::Tanh,
            Activation::Identity,
            rng,
        );
        Self::from_parts(policy, critic, config)
    }

    /// Assembles an agent from an existing policy and critic (used after
    /// offline behavior cloning).
    pub fn from_parts(policy: GaussianPolicy, critic: Mlp, config: PpoConfig) -> Self {
        let actor_opt = Adam::new(policy.num_parameters(), config.actor_lr);
        let critic_opt = Adam::new(critic.num_parameters(), config.critic_lr);
        Self {
            config,
            policy,
            critic,
            actor_opt,
            critic_opt,
            scratch: PpoUpdateScratch::default(),
        }
    }

    /// The learner's configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Immutable access to the policy.
    pub fn policy(&self) -> &GaussianPolicy {
        &self.policy
    }

    /// Mutable access to the policy (used by behavior cloning).
    pub fn policy_mut(&mut self) -> &mut GaussianPolicy {
        &mut self.policy
    }

    /// Immutable access to the critic.
    pub fn critic(&self) -> &Mlp {
        &self.critic
    }

    /// Mutable access to the critic (used by offline value pre-training and
    /// the per-sample reference implementation in the benchmarks).
    pub fn critic_mut(&mut self) -> &mut Mlp {
        &mut self.critic
    }

    /// Samples a stochastic action.
    pub fn act<R: Rng + ?Sized>(&self, state: &[f64], rng: &mut R) -> PolicySample {
        self.policy.sample(state, rng)
    }

    /// Samples a stochastic action around an already-computed policy mean
    /// (the fused cell batch hands each agent its mean row). Bit-identical
    /// to [`PpoAgent::act`] when `mean` carries the bits
    /// `policy().mean_action(state)` would produce.
    pub fn act_with_mean<R: Rng + ?Sized>(&self, mean: &[f64], rng: &mut R) -> PolicySample {
        self.policy.sample_with_mean(mean, rng)
    }

    /// The deterministic (mean) action.
    pub fn act_deterministic(&self, state: &[f64]) -> Vec<f64> {
        self.policy.mean_action(state)
    }

    /// Critic estimate of the (shaped) return from `state` — also used as the
    /// reward value function `R` that bootstraps truncated episodes.
    pub fn value(&self, state: &[f64]) -> f64 {
        self.critic.forward(state)[0]
    }

    /// Runs a full PPO update on the buffer's ready transitions.
    ///
    /// The whole minibatch flows through the batched network API: per epoch
    /// and minibatch there is exactly **one** forward GEMM pass (shared by
    /// the new log-probabilities and the policy gradient), one policy
    /// backward pass, and one critic forward/backward pass — instead of the
    /// former per-sample `matvec` loops. All scratch matrices are reused
    /// across minibatches, so the inner loop allocates nothing once warm.
    ///
    /// The buffer is left untouched (the caller clears it), so ablations can
    /// inspect it afterwards.
    pub fn update<R: Rng + ?Sized>(
        &mut self,
        buffer: &RolloutBuffer,
        rng: &mut R,
    ) -> PpoUpdateStats {
        // Route through the shared-scratch form using the agent-owned
        // scratch (moved out and back; no allocation, no clone).
        let mut scratch = std::mem::take(&mut self.scratch);
        let stats = self.update_with_scratch(buffer, rng, &mut scratch);
        self.scratch = scratch;
        stats
    }

    /// [`PpoAgent::update`] with a caller-owned scratch, so one scratch can
    /// serve every same-shaped agent of a cell in turn (the fused slot
    /// update). The arithmetic is identical to `update` — results are
    /// bit-for-bit the same regardless of which scratch is passed.
    pub fn update_with_scratch<R: Rng + ?Sized>(
        &mut self,
        buffer: &RolloutBuffer,
        rng: &mut R,
        scratch: &mut PpoUpdateScratch,
    ) -> PpoUpdateStats {
        let (transitions, _advantages, returns) = buffer.ready_batch();
        let advantages = buffer.normalized_advantages();
        let n = transitions.len();
        if n == 0 {
            return PpoUpdateStats {
                num_transitions: 0,
                surrogate: 0.0,
                value_loss: 0.0,
                clip_fraction: 0.0,
                mean_ratio: 1.0,
            };
        }
        let Self {
            config,
            policy,
            critic,
            actor_opt,
            critic_opt,
            // The agent-owned scratch is bypassed: the caller's is used.
            scratch: _,
        } = self;
        let state_dim = policy.state_dim();
        let action_dim = policy.action_dim();
        // Pack the rollout into matrices once; minibatches gather rows from
        // these instead of touching the transition structs again. All
        // buffers live in the agent's scratch, so steady-state updates
        // allocate nothing.
        scratch.all_states.resize(n, state_dim);
        scratch.all_raw.resize(n, action_dim);
        for (i, t) in transitions.iter().enumerate() {
            scratch.all_states.copy_row_from(i, &t.state);
            scratch.all_raw.copy_row_from(i, &t.raw_action);
        }

        scratch.indices.clear();
        scratch.indices.extend(0..n);
        let mut last_surrogate = 0.0;
        let mut last_value_loss = 0.0;
        let mut last_clip_fraction = 0.0;
        let mut last_mean_ratio = 1.0;
        let clip_lo = 1.0 - config.clip_epsilon;
        let clip_hi = 1.0 + config.clip_epsilon;

        for _epoch in 0..config.epochs {
            scratch.indices.shuffle(rng);
            let mut surrogate_sum = 0.0;
            let mut value_loss_sum = 0.0;
            let mut clipped = 0usize;
            let mut ratio_sum = 0.0;

            for chunk in scratch.indices.chunks(config.minibatch_size.max(1)) {
                policy.zero_grad();
                critic.zero_grad();
                let batch = chunk.len();
                let batch_f = batch as f64;

                // Gather the shuffled minibatch rows straight into the
                // workspaces' input buffers.
                let actor_in = scratch.actor_ws.input_mut(batch, state_dim);
                for (b, &i) in chunk.iter().enumerate() {
                    actor_in.copy_row_from(b, scratch.all_states.row(i));
                }
                scratch.mb_raw.resize(batch, action_dim);
                for (b, &i) in chunk.iter().enumerate() {
                    scratch.mb_raw.copy_row_from(b, scratch.all_raw.row(i));
                }

                // ---- actor: one batched forward, shared by the ratio
                // computation and the policy gradient ----
                policy.log_probs_batch_prefilled(
                    &scratch.mb_raw,
                    &mut scratch.actor_ws,
                    &mut scratch.new_log_probs,
                );
                scratch.weights.clear();
                for (b, &i) in chunk.iter().enumerate() {
                    let adv = advantages[i];
                    let ratio = (scratch.new_log_probs[b] - transitions[i].log_prob).exp();
                    let unclipped = ratio * adv;
                    let clipped_obj = ratio.clamp(clip_lo, clip_hi) * adv;
                    surrogate_sum += unclipped.min(clipped_obj);
                    ratio_sum += ratio;
                    // Gradient flows only when the unclipped branch is
                    // active; clipped samples keep a zero weight.
                    if unclipped <= clipped_obj + 1e-12 {
                        scratch.weights.push(ratio * adv / batch_f);
                    } else {
                        scratch.weights.push(0.0);
                        clipped += 1;
                    }
                }
                policy.accumulate_log_prob_grad_batch(
                    &scratch.mb_raw,
                    &scratch.weights,
                    &mut scratch.actor_ws,
                    &mut scratch.actor_grad,
                );
                // Entropy bonus (per minibatch, not per sample).
                policy.accumulate_entropy_grad(config.entropy_coef);

                // ---- critic: one batched forward/backward ----
                let critic_in = scratch.critic_ws.input_mut(batch, state_dim);
                for (b, &i) in chunk.iter().enumerate() {
                    critic_in.copy_row_from(b, scratch.all_states.row(i));
                }
                scratch.critic_grad.resize(batch, 1);
                {
                    let values = critic.forward_batch_prefilled(&mut scratch.critic_ws);
                    for (b, &i) in chunk.iter().enumerate() {
                        let err = values.get(b, 0) - returns[i];
                        value_loss_sum += err * err;
                        scratch.critic_grad.set(b, 0, 2.0 * err / batch_f);
                    }
                }
                critic.backward_batch(&scratch.critic_grad, &mut scratch.critic_ws);

                actor_opt.step_set(policy);
                critic_opt.step_set(critic);
            }
            last_surrogate = surrogate_sum / n as f64;
            last_value_loss = value_loss_sum / n as f64;
            last_clip_fraction = clipped as f64 / n as f64;
            last_mean_ratio = ratio_sum / n as f64;
        }

        PpoUpdateStats {
            num_transitions: n,
            surrogate: last_surrogate,
            value_loss: last_value_loss,
            clip_fraction: last_clip_fraction,
            mean_ratio: last_mean_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Transition;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A one-state continuous bandit: reward = 1 - (a0 - 0.7)^2 - (a1 - 0.2)^2.
    fn bandit_reward(action: &[f64]) -> f64 {
        1.0 - (action[0] - 0.7) * (action[0] - 0.7) - (action[1] - 0.2) * (action[1] - 0.2)
    }

    /// Collects `n` single-step bandit episodes (done after every step, so
    /// the advantage of an action reflects only that action's reward).
    fn collect_bandit_steps(
        agent: &PpoAgent,
        rng: &mut ChaCha8Rng,
        buffer: &mut RolloutBuffer,
        n: usize,
    ) {
        let state = vec![1.0, 0.0];
        for _ in 0..n {
            let sample = agent.act(&state, rng);
            let reward = bandit_reward(&sample.action);
            buffer.push(Transition {
                state: state.clone(),
                raw_action: sample.raw_action.clone(),
                action: sample.action.clone(),
                log_prob: sample.log_prob,
                reward,
                cost: 0.0,
                value: agent.value(&state),
                done: true,
            });
            buffer.finish_episode(0.0, agent.config().gamma, agent.config().gae_lambda);
        }
    }

    #[test]
    fn ppo_improves_a_continuous_bandit() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let config = PpoConfig {
            epochs: 4,
            minibatch_size: 32,
            actor_lr: 5e-3,
            critic_lr: 5e-3,
            ..PpoConfig::default()
        };
        let mut agent = PpoAgent::new_small(2, 2, config, &mut rng);
        let state = vec![1.0, 0.0];
        let before = bandit_reward(&agent.act_deterministic(&state));
        for _ in 0..60 {
            let mut buffer = RolloutBuffer::new();
            collect_bandit_steps(&agent, &mut rng, &mut buffer, 64);
            let stats = agent.update(&buffer, &mut rng);
            assert_eq!(stats.num_transitions, 64);
        }
        let after = bandit_reward(&agent.act_deterministic(&state));
        assert!(
            after > before + 0.05 || after > 0.95,
            "PPO failed to improve: before {before}, after {after}"
        );
        let a = agent.act_deterministic(&state);
        assert!((a[0] - 0.7).abs() < 0.2, "a0 {} should approach 0.7", a[0]);
        assert!((a[1] - 0.2).abs() < 0.2, "a1 {} should approach 0.2", a[1]);
    }

    #[test]
    fn update_on_an_empty_buffer_is_a_noop() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut agent = PpoAgent::new_small(2, 2, PpoConfig::default(), &mut rng);
        let buffer = RolloutBuffer::new();
        let stats = agent.update(&buffer, &mut rng);
        assert_eq!(stats.num_transitions, 0);
    }

    #[test]
    fn critic_learns_the_return_of_a_constant_reward() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let config = PpoConfig {
            epochs: 10,
            critic_lr: 5e-3,
            ..PpoConfig::default()
        };
        let mut agent = PpoAgent::new_small(2, 1, config, &mut rng);
        let state = vec![0.5, 0.5];
        for _ in 0..30 {
            let mut buffer = RolloutBuffer::new();
            for _ in 0..32 {
                let sample = agent.act(&state, &mut rng);
                buffer.push(Transition {
                    state: state.clone(),
                    raw_action: sample.raw_action.clone(),
                    action: sample.action.clone(),
                    log_prob: sample.log_prob,
                    reward: 1.0,
                    cost: 0.0,
                    value: agent.value(&state),
                    done: true, // single-step episodes: return is exactly 1
                });
                buffer.finish_episode(0.0, agent.config().gamma, agent.config().gae_lambda);
            }
            agent.update(&buffer, &mut rng);
        }
        let v = agent.value(&state);
        assert!(
            (v - 1.0).abs() < 0.2,
            "critic value {v} should approach 1.0"
        );
    }

    #[test]
    fn clip_fraction_and_ratio_are_reported() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut agent = PpoAgent::new_small(
            2,
            2,
            PpoConfig {
                epochs: 6,
                ..PpoConfig::default()
            },
            &mut rng,
        );
        let mut buffer = RolloutBuffer::new();
        collect_bandit_steps(&agent, &mut rng, &mut buffer, 64);
        let stats = agent.update(&buffer, &mut rng);
        assert!((0.0..=1.0).contains(&stats.clip_fraction));
        assert!(stats.mean_ratio > 0.0);
        assert!(stats.value_loss >= 0.0);
    }

    #[test]
    fn deterministic_action_is_within_the_action_box() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let agent = PpoAgent::new_small(3, 4, PpoConfig::default(), &mut rng);
        let a = agent.act_deterministic(&[0.1, 0.2, 0.3]);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
