//! The variational cost-value estimator (policy `π_φ`, paper §3 Eq. 6–8).
//!
//! The proactive baseline switching rule needs, at every slot, the
//! distribution of the *remaining episode cost* that would be incurred if the
//! baseline policy took over now. The paper trains a Bayesian neural network
//! on `(state, cost-to-go)` pairs collected while the baseline interacts with
//! the network, maximizing the ELBO (Eq. 7); at decision time the estimator
//! reports a mean `μ` and standard deviation `σ`, and the agent switches when
//! `Σ cost + μ + η·σ ≥ T · C_max` (Eq. 8).
//!
//! [`CostValueEstimator`] wraps the Bayes-by-backprop network from
//! `onslicing_nn`; [`CostValueEstimator::cost_to_go_dataset`] builds the
//! training targets from raw per-slot baseline costs.

use rand::Rng;
use serde::{Deserialize, Serialize};

use onslicing_nn::{Adam, BayesWorkspace, BayesianMlp, BayesianPrediction, Matrix, PredictScratch};

/// A `(state, remaining-episode cost)` training pair for the estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostToGoSample {
    /// Flattened observation at the decision slot.
    pub state: Vec<f64>,
    /// Cost accumulated by the baseline from this slot to the end of the
    /// episode.
    pub cost_to_go: f64,
}

/// Hyper-parameters of the estimator's training stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimatorConfig {
    /// Number of passes over the dataset per `fit` call.
    pub epochs: usize,
    /// Learning rate of the Adam optimizer.
    pub learning_rate: f64,
    /// Weight of the KL regularizer relative to the likelihood (the
    /// `1/|D|` minibatch scaling of Bayes-by-backprop).
    pub kl_weight: f64,
    /// Number of posterior samples drawn per prediction.
    pub prediction_samples: usize,
}

impl Default for CostEstimatorConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            learning_rate: 2e-3,
            kl_weight: 1e-4,
            prediction_samples: 16,
        }
    }
}

/// The Bayesian cost-value estimator π_φ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostValueEstimator {
    network: BayesianMlp,
    optimizer: Adam,
    config: CostEstimatorConfig,
    /// Scratch memory for the fast predict path — never serialized; a
    /// deserialized estimator starts with an invalid (empty) cache and
    /// rebuilds it on first use.
    #[serde(skip)]
    predict_scratch: PredictScratch,
}

impl CostValueEstimator {
    /// Creates an estimator for the given state dimensionality using a small
    /// trunk (the estimator regresses a single scalar, so the paper-size
    /// trunk is unnecessary and slow in tests).
    pub fn new<R: Rng + ?Sized>(
        state_dim: usize,
        config: CostEstimatorConfig,
        rng: &mut R,
    ) -> Self {
        let network = BayesianMlp::new(&[state_dim, 64, 32, 1], rng);
        let optimizer = Adam::new(network.num_parameters(), config.learning_rate);
        Self {
            network,
            optimizer,
            config,
            predict_scratch: PredictScratch::new(),
        }
    }

    /// The estimator's configuration.
    pub fn config(&self) -> &CostEstimatorConfig {
        &self.config
    }

    /// Builds cost-to-go training pairs from one baseline episode: for each
    /// slot `t`, the target is `Σ_{m ≥ t} cost_m`.
    ///
    /// # Panics
    /// Panics if the numbers of states and costs differ.
    pub fn cost_to_go_dataset(states: &[Vec<f64>], costs: &[f64]) -> Vec<CostToGoSample> {
        assert_eq!(states.len(), costs.len(), "states/costs length mismatch");
        let mut acc = 0.0;
        let mut togo = vec![0.0; costs.len()];
        for i in (0..costs.len()).rev() {
            acc += costs[i];
            togo[i] = acc;
        }
        states
            .iter()
            .zip(togo)
            .map(|(s, c)| CostToGoSample {
                state: s.clone(),
                cost_to_go: c,
            })
            .collect()
    }

    /// Trains the estimator on the dataset by maximizing the ELBO (Gaussian
    /// likelihood + KL to the prior). Returns the mean squared error after
    /// each epoch.
    ///
    /// The batched path draws **one posterior weight sample per epoch** and
    /// pushes the whole dataset through it with one GEMM per layer (a
    /// single-sample Monte-Carlo ELBO estimate, the standard
    /// Bayes-by-backprop minibatch scheme), instead of resampling every
    /// weight for every data point as the per-sample loop did. Both are
    /// unbiased ELBO gradient estimators; the batched one is far cheaper.
    pub fn fit<R: Rng + ?Sized>(&mut self, dataset: &[CostToGoSample], rng: &mut R) -> Vec<f64> {
        if dataset.is_empty() {
            return Vec::new();
        }
        let n = dataset.len() as f64;
        let state_dim = self.network.input_dim();
        let mut states = Matrix::zeros(dataset.len(), state_dim);
        for (i, sample) in dataset.iter().enumerate() {
            states.copy_row_from(i, &sample.state);
        }
        let mut ws = BayesWorkspace::new();
        let mut grad = Matrix::zeros(dataset.len(), 1);
        let mut epoch_errors = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            self.network.zero_grad();
            self.network.resample_weights(rng);
            let mut err_sum = 0.0;
            {
                let y = self.network.forward_batch(&states, &mut ws);
                for (i, sample) in dataset.iter().enumerate() {
                    let err = y.get(i, 0) - sample.cost_to_go;
                    err_sum += err * err;
                    // Gradient of 0.5 * err^2 averaged over the dataset (the
                    // Gaussian likelihood term of the ELBO with unit
                    // observation noise).
                    grad.set(i, 0, err / n);
                }
            }
            self.network.backward_batch(&grad, &mut ws);
            self.network.accumulate_kl_grad(self.config.kl_weight / n);
            self.optimizer.step_set(&mut self.network);
            epoch_errors.push(err_sum / n);
        }
        // Parameters moved: the fast-predict σ cache is stale.
        self.predict_scratch.invalidate();
        epoch_errors
    }

    /// Predictive mean and standard deviation of the baseline's remaining
    /// episode cost at the given state.
    ///
    /// Runs the allocation-free fast path ([`BayesianMlp::predict_with`]),
    /// which is bit-identical to the reference `BayesianMlp::predict` on a
    /// shared RNG stream — the switch rule and all goldens see the exact
    /// same numbers.
    pub fn predict<R: Rng + ?Sized>(&mut self, state: &[f64], rng: &mut R) -> BayesianPrediction {
        let mut p = self.network.predict_with(
            state,
            self.config.prediction_samples,
            rng,
            &mut self.predict_scratch,
        );
        // Remaining cost is non-negative by construction.
        p.mean = p.mean.max(0.0);
        p
    }

    /// Deterministic point prediction (posterior means only) — the
    /// "non-estimator" ablations use the cumulative cost alone, but this is
    /// still handy for diagnostics.
    pub fn predict_mean(&self, state: &[f64]) -> f64 {
        self.network.forward_mean(state)[0].max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cost_to_go_is_a_reverse_cumulative_sum() {
        let states = vec![vec![0.0], vec![1.0], vec![2.0]];
        let costs = vec![0.1, 0.2, 0.3];
        let ds = CostValueEstimator::cost_to_go_dataset(&states, &costs);
        assert_eq!(ds.len(), 3);
        assert!((ds[0].cost_to_go - 0.6).abs() < 1e-12);
        assert!((ds[1].cost_to_go - 0.5).abs() < 1e-12);
        assert!((ds[2].cost_to_go - 0.3).abs() < 1e-12);
    }

    #[test]
    fn estimator_learns_a_state_dependent_cost_to_go() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Cost-to-go = 2 * s0 (e.g. early in the episode more cost remains).
        let dataset: Vec<CostToGoSample> = (0..128)
            .map(|i| {
                let s = i as f64 / 128.0;
                CostToGoSample {
                    state: vec![s, 1.0 - s],
                    cost_to_go: 2.0 * s,
                }
            })
            .collect();
        let mut est = CostValueEstimator::new(
            2,
            CostEstimatorConfig {
                epochs: 300,
                learning_rate: 5e-3,
                ..Default::default()
            },
            &mut rng,
        );
        let errors = est.fit(&dataset, &mut rng);
        assert!(
            errors.last().unwrap() < &0.05,
            "final mse {}",
            errors.last().unwrap()
        );
        let p_low = est.predict(&[0.1, 0.9], &mut rng);
        let p_high = est.predict(&[0.9, 0.1], &mut rng);
        assert!(
            p_high.mean > p_low.mean,
            "{} should exceed {}",
            p_high.mean,
            p_low.mean
        );
        assert!((p_high.mean - 1.8).abs() < 0.5);
        assert!(p_low.std >= 0.0 && p_high.std >= 0.0);
    }

    #[test]
    fn predictions_are_non_negative() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut est = CostValueEstimator::new(2, CostEstimatorConfig::default(), &mut rng);
        // Untrained network may output negatives; the wrapper clamps the mean.
        let p = est.predict(&[0.5, 0.5], &mut rng);
        assert!(p.mean >= 0.0);
        assert!(est.predict_mean(&[0.5, 0.5]) >= 0.0);
    }

    #[test]
    fn fitting_an_empty_dataset_returns_no_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut est = CostValueEstimator::new(2, CostEstimatorConfig::default(), &mut rng);
        assert!(est.fit(&[], &mut rng).is_empty());
    }

    #[test]
    fn uncertainty_is_larger_away_from_the_training_data() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Train only on states near 0.2.
        let dataset: Vec<CostToGoSample> = (0..64)
            .map(|i| {
                let s = 0.15 + 0.1 * (i as f64 / 64.0);
                CostToGoSample {
                    state: vec![s],
                    cost_to_go: 1.0,
                }
            })
            .collect();
        let mut est = CostValueEstimator::new(
            1,
            CostEstimatorConfig {
                epochs: 200,
                learning_rate: 5e-3,
                ..Default::default()
            },
            &mut rng,
        );
        est.fit(&dataset, &mut rng);
        let in_dist: f64 = (0..10)
            .map(|_| est.predict(&[0.2], &mut rng).std)
            .sum::<f64>()
            / 10.0;
        let out_dist: f64 = (0..10)
            .map(|_| est.predict(&[3.0], &mut rng).std)
            .sum::<f64>()
            / 10.0;
        assert!(
            out_dist > in_dist,
            "uncertainty far from data ({out_dist}) should exceed in-distribution ({in_dist})"
        );
    }

    #[test]
    fn fit_invalidates_the_fast_predict_cache() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut est = CostValueEstimator::new(2, CostEstimatorConfig::default(), &mut rng);
        // Warm the σ cache, then move the parameters with a fit.
        let _ = est.predict(&[0.1, 0.2], &mut ChaCha8Rng::seed_from_u64(5));
        let dataset: Vec<CostToGoSample> = (0..16)
            .map(|i| CostToGoSample {
                state: vec![i as f64 / 16.0, 0.5],
                cost_to_go: i as f64 / 8.0,
            })
            .collect();
        est.fit(&dataset, &mut ChaCha8Rng::seed_from_u64(6));
        // A cold estimator (as after deserialization: empty scratch) must
        // predict the exact same bits — i.e. the warm cache was invalidated.
        let mut cold = est.clone();
        cold.predict_scratch = PredictScratch::new();
        let warm = est.predict(&[0.1, 0.2], &mut ChaCha8Rng::seed_from_u64(7));
        let fresh = cold.predict(&[0.1, 0.2], &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(warm.mean.to_bits(), fresh.mean.to_bits());
        assert_eq!(warm.std.to_bits(), fresh.std.to_bits());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_dataset_construction_panics() {
        let _ = CostValueEstimator::cost_to_go_dataset(&[vec![0.0]], &[0.1, 0.2]);
    }
}
