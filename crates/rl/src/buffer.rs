//! Rollout storage and generalized advantage estimation.
//!
//! The OnSlicing agent collects one transition per configuration slot. When
//! the proactive baseline switching mechanism truncates an episode, only the
//! transitions run by policy `π_θ` are kept and the reward value function at
//! the truncation slot bootstraps the return (paper §3, "Smooth Policy
//! Improvement") — [`RolloutBuffer::finish_episode`] implements exactly that
//! bootstrap.

use serde::{Deserialize, Serialize};

/// One slot's experience as seen by the learning policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Flattened observation.
    pub state: Vec<f64>,
    /// The raw (unclipped) Gaussian sample the log-probability refers to.
    pub raw_action: Vec<f64>,
    /// The action actually executed (clipped / modified).
    pub action: Vec<f64>,
    /// Log-probability of `raw_action` under the behaviour policy.
    pub log_prob: f64,
    /// The (possibly constraint-shaped) reward used for learning.
    pub reward: f64,
    /// The raw SLA cost of the slot (Eq. 10).
    pub cost: f64,
    /// Critic value estimate at `state`.
    pub value: f64,
    /// Whether this transition ended its episode.
    pub done: bool,
}

/// Generalized advantage estimation over one episode segment.
///
/// `rewards[i]`, `values[i]` and `dones[i]` describe step `i`;
/// `bootstrap_value` is the critic estimate of the state following the last
/// step (0 when the episode terminated).
///
/// Returns `(advantages, returns)` where `returns[i] = advantages[i] + values[i]`.
pub fn compute_gae(
    rewards: &[f64],
    values: &[f64],
    dones: &[bool],
    bootstrap_value: f64,
    gamma: f64,
    lambda: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(
        rewards.len(),
        values.len(),
        "rewards/values length mismatch"
    );
    assert_eq!(rewards.len(), dones.len(), "rewards/dones length mismatch");
    let n = rewards.len();
    let mut advantages = vec![0.0; n];
    let mut gae = 0.0;
    for i in (0..n).rev() {
        let next_value = if dones[i] {
            0.0
        } else if i + 1 < n {
            values[i + 1]
        } else {
            bootstrap_value
        };
        let not_done = if dones[i] { 0.0 } else { 1.0 };
        let delta = rewards[i] + gamma * next_value - values[i];
        gae = delta + gamma * lambda * not_done * gae;
        advantages[i] = gae;
    }
    let returns = advantages
        .iter()
        .zip(values.iter())
        .map(|(a, v)| a + v)
        .collect();
    (advantages, returns)
}

/// A rollout buffer accumulating transitions across (possibly truncated)
/// episodes until the learner consumes them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
    /// Advantage / return targets aligned with `transitions`, filled by
    /// `finish_episode`.
    advantages: Vec<f64>,
    returns: Vec<f64>,
    /// Index of the first transition of the episode currently being filled.
    episode_start: usize,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored transitions (including the in-progress episode).
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the buffer holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Number of transitions whose advantage targets have been computed.
    pub fn num_ready(&self) -> usize {
        self.advantages.len()
    }

    /// Adds one transition to the in-progress episode.
    pub fn push(&mut self, transition: Transition) {
        self.transitions.push(transition);
    }

    /// Closes the in-progress episode and computes its GAE targets.
    ///
    /// `bootstrap_value` is the estimated value of the remaining return after
    /// the last stored transition: 0 for naturally terminated episodes, and
    /// the reward value function `R` at the truncation slot when the baseline
    /// policy took over (the paper's truncated-episode correction).
    pub fn finish_episode(&mut self, bootstrap_value: f64, gamma: f64, lambda: f64) {
        let segment = &self.transitions[self.episode_start..];
        if segment.is_empty() {
            return;
        }
        let rewards: Vec<f64> = segment.iter().map(|t| t.reward).collect();
        let values: Vec<f64> = segment.iter().map(|t| t.value).collect();
        let dones: Vec<bool> = segment.iter().map(|t| t.done).collect();
        let (adv, ret) = compute_gae(&rewards, &values, &dones, bootstrap_value, gamma, lambda);
        self.advantages.extend(adv);
        self.returns.extend(ret);
        self.episode_start = self.transitions.len();
    }

    /// Returns the ready transitions together with their advantage and return
    /// targets (transitions of the still-open episode are excluded).
    pub fn ready_batch(&self) -> (&[Transition], &[f64], &[f64]) {
        let n = self.num_ready();
        (&self.transitions[..n], &self.advantages, &self.returns)
    }

    /// Advantages normalized to zero mean and unit variance (a standard PPO
    /// stabilization); returns the raw advantages when there are fewer than
    /// two samples.
    pub fn normalized_advantages(&self) -> Vec<f64> {
        let adv = &self.advantages;
        if adv.len() < 2 {
            return adv.clone();
        }
        let mean = adv.iter().sum::<f64>() / adv.len() as f64;
        let var = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / adv.len() as f64;
        let std = var.sqrt().max(1e-8);
        adv.iter().map(|a| (a - mean) / std).collect()
    }

    /// Total raw cost of the ready transitions (for the Lagrangian update).
    pub fn total_cost(&self) -> f64 {
        self.transitions[..self.num_ready()]
            .iter()
            .map(|t| t.cost)
            .sum()
    }

    /// Average raw cost per ready transition (0 when empty).
    pub fn mean_cost(&self) -> f64 {
        let n = self.num_ready();
        if n == 0 {
            0.0
        } else {
            self.total_cost() / n as f64
        }
    }

    /// Clears everything (after a learner update).
    pub fn clear(&mut self) {
        self.transitions.clear();
        self.advantages.clear();
        self.returns.clear();
        self.episode_start = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(reward: f64, cost: f64, value: f64, done: bool) -> Transition {
        Transition {
            state: vec![0.0; 3],
            raw_action: vec![0.5],
            action: vec![0.5],
            log_prob: -1.0,
            reward,
            cost,
            value,
            done,
        }
    }

    #[test]
    fn gae_reduces_to_td_error_when_lambda_is_zero() {
        let rewards = [1.0, 1.0, 1.0];
        let values = [0.5, 0.5, 0.5];
        let dones = [false, false, true];
        let (adv, ret) = compute_gae(&rewards, &values, &dones, 0.0, 0.99, 0.0);
        // delta_t = r + gamma * V(s') - V(s)
        assert!((adv[0] - (1.0 + 0.99 * 0.5 - 0.5)).abs() < 1e-12);
        assert!((adv[2] - (1.0 - 0.5)).abs() < 1e-12);
        for i in 0..3 {
            assert!((ret[i] - (adv[i] + values[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn gae_equals_discounted_return_minus_value_when_lambda_is_one() {
        let rewards = [1.0, 2.0, 3.0];
        let values = [0.0, 0.0, 0.0];
        let dones = [false, false, true];
        let gamma = 0.9;
        let (adv, _) = compute_gae(&rewards, &values, &dones, 0.0, gamma, 1.0);
        let expected0 = 1.0 + gamma * 2.0 + gamma * gamma * 3.0;
        assert!((adv[0] - expected0).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_value_feeds_the_last_step_when_not_done() {
        let rewards = [0.0];
        let values = [0.0];
        let dones = [false];
        let (adv, _) = compute_gae(&rewards, &values, &dones, 10.0, 0.5, 1.0);
        assert!((adv[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn done_masks_the_bootstrap() {
        let rewards = [0.0];
        let values = [0.0];
        let dones = [true];
        let (adv, _) = compute_gae(&rewards, &values, &dones, 10.0, 0.5, 1.0);
        assert_eq!(adv[0], 0.0);
    }

    #[test]
    fn buffer_tracks_ready_and_open_episodes() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, 0.1, 0.0, false));
        buf.push(transition(1.0, 0.3, 0.0, true));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.num_ready(), 0);
        buf.finish_episode(0.0, 0.99, 0.95);
        assert_eq!(buf.num_ready(), 2);
        // Start a new episode that remains open.
        buf.push(transition(1.0, 0.5, 0.0, false));
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.num_ready(), 2);
        assert!((buf.mean_cost() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn normalized_advantages_have_zero_mean_and_unit_variance() {
        let mut buf = RolloutBuffer::new();
        for i in 0..10 {
            buf.push(transition(i as f64, 0.0, 0.0, i == 9));
        }
        buf.finish_episode(0.0, 0.99, 0.95);
        let norm = buf.normalized_advantages();
        let mean = norm.iter().sum::<f64>() / norm.len() as f64;
        let var = norm.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / norm.len() as f64;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clear_resets_everything() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, 0.0, 0.0, true));
        buf.finish_episode(0.0, 0.99, 0.95);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.num_ready(), 0);
    }

    #[test]
    fn finishing_an_empty_episode_is_a_noop() {
        let mut buf = RolloutBuffer::new();
        buf.finish_episode(0.0, 0.99, 0.95);
        assert_eq!(buf.num_ready(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn gae_rejects_mismatched_inputs() {
        let _ = compute_gae(&[1.0], &[0.0, 0.0], &[false], 0.0, 0.9, 0.9);
    }
}
