//! The constraint-aware reward shaping of the Lagrangian primal–dual method
//! (paper §3, Eq. 3–5).
//!
//! The constrained problem P0 (maximize reward subject to the average cost
//! staying below `C_max`) is relaxed into the Lagrangian of Eq. 3. The primal
//! step is an ordinary PPO update on the *shaped* reward
//! `r − (λ / T) · c`; the dual step raises the multiplier by sub-gradient
//! ascent whenever the observed average cost exceeds the threshold (Eq. 5):
//!
//! ```text
//! λ ← [ λ + ε ( E[ (1/T) Σ c ] − C_max ) ]⁺
//! ```

use serde::{Deserialize, Serialize};

/// The Lagrangian multiplier of one slice's SLA constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LagrangianMultiplier {
    /// Current multiplier value `λ ≥ 0`.
    lambda: f64,
    /// Dual step size `ε`.
    pub step_size: f64,
    /// SLA threshold `C_max` on the average per-slot cost.
    pub cost_threshold: f64,
}

impl LagrangianMultiplier {
    /// Creates a multiplier starting at `λ = initial_lambda`.
    ///
    /// # Panics
    /// Panics if the step size is not positive, the threshold is outside
    /// `[0, 1]` or the initial value is negative.
    pub fn new(initial_lambda: f64, step_size: f64, cost_threshold: f64) -> Self {
        assert!(initial_lambda >= 0.0, "lambda must be non-negative");
        assert!(step_size > 0.0, "step size must be positive");
        assert!(
            (0.0..=1.0).contains(&cost_threshold),
            "C_max must be in [0, 1]"
        );
        Self {
            lambda: initial_lambda,
            step_size,
            cost_threshold,
        }
    }

    /// The paper-style default: start neutral (λ = 1) with a moderate dual
    /// step size for the 5 % SLA threshold.
    pub fn onslicing_default(cost_threshold: f64) -> Self {
        Self::new(1.0, 10.0, cost_threshold)
    }

    /// The current multiplier.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Shapes one slot's reward: `r − λ · c` (the `1/T` of Eq. 3 is folded
    /// into the step size since the average cost is what the dual update
    /// sees).
    pub fn shaped_reward(&self, reward: f64, cost: f64) -> f64 {
        reward - self.lambda * cost
    }

    /// Dual update from the average per-slot cost observed since the last
    /// update (Eq. 5). Returns the new multiplier.
    pub fn update(&mut self, average_cost: f64) -> f64 {
        self.lambda =
            (self.lambda + self.step_size * (average_cost - self.cost_threshold)).max(0.0);
        self.lambda
    }

    /// Whether the observed average cost violates the constraint.
    pub fn is_violated(&self, average_cost: f64) -> bool {
        average_cost > self.cost_threshold + 1e-12
    }

    /// Replaces the constraint threshold `C_max` while keeping the learned
    /// multiplier — an SLA renegotiation tightens or loosens the constraint
    /// mid-deployment without resetting the dual state.
    ///
    /// # Panics
    /// Panics if the threshold is outside `[0, 1]`.
    pub fn set_cost_threshold(&mut self, cost_threshold: f64) {
        assert!(
            (0.0..=1.0).contains(&cost_threshold),
            "C_max must be in [0, 1]"
        );
        self.cost_threshold = cost_threshold;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_raises_lambda_and_satisfaction_lowers_it() {
        let mut m = LagrangianMultiplier::new(1.0, 10.0, 0.05);
        let up = m.update(0.15); // violated by 0.10
        assert!((up - 2.0).abs() < 1e-12);
        let down = m.update(0.0); // satisfied with margin 0.05
        assert!((down - 1.5).abs() < 1e-12);
    }

    #[test]
    fn lambda_never_goes_negative() {
        let mut m = LagrangianMultiplier::new(0.1, 10.0, 0.05);
        m.update(0.0);
        assert_eq!(m.lambda(), 0.0);
        m.update(0.0);
        assert_eq!(m.lambda(), 0.0);
    }

    #[test]
    fn shaped_reward_penalizes_cost_proportionally_to_lambda() {
        let m = LagrangianMultiplier::new(2.0, 1.0, 0.05);
        assert!((m.shaped_reward(-1.0, 0.5) + 2.0).abs() < 1e-12);
        let zero = LagrangianMultiplier::new(0.0, 1.0, 0.05);
        assert_eq!(zero.shaped_reward(-1.0, 0.5), -1.0);
    }

    #[test]
    fn equilibrium_when_cost_equals_threshold() {
        let mut m = LagrangianMultiplier::new(3.0, 10.0, 0.05);
        let after = m.update(0.05);
        assert!((after - 3.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_violations_grow_lambda_monotonically() {
        let mut m = LagrangianMultiplier::onslicing_default(0.05);
        let mut prev = m.lambda();
        for _ in 0..5 {
            let now = m.update(0.2);
            assert!(now > prev);
            prev = now;
        }
    }

    #[test]
    fn violation_check_matches_threshold() {
        let m = LagrangianMultiplier::onslicing_default(0.05);
        assert!(!m.is_violated(0.05));
        assert!(m.is_violated(0.0501));
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn invalid_step_size_is_rejected() {
        let _ = LagrangianMultiplier::new(1.0, 0.0, 0.05);
    }
}
