//! End-to-end composition of the RAN, TN, CN and edge substrates into
//! per-slot slice KPIs.
//!
//! [`NetworkSimulator::step_slice`] is the simulator's single entry point for
//! the orchestration loop: given a slice, its SLA, the executed action and
//! the slot's traffic intensity, it produces the [`SlotKpi`] the slice's
//! application would report on the real testbed — average round-trip latency
//! for MAR, delivered FPS for HVS, delivery reliability for RDC, plus the
//! network-side statistics (channel quality, radio utilization, server
//! workload) the agent folds into its next observation.

// Channels are keyed by a BTreeMap so a serialized simulator has one
// canonical byte representation (checkpoint files diff cleanly).
use std::collections::BTreeMap;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use onslicing_slices::{Action, Sla, SliceKind, SlotKpi};
use onslicing_traffic::{PoissonArrivals, SLOT_SECONDS};

use crate::cn::CnConfig;
use crate::edge::EdgeConfig;
use crate::ran::{ChannelModel, Direction, RanConfig};
use crate::tn::TnConfig;

/// Static description of a slice application's traffic shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceWorkload {
    /// Bits carried uplink per user request.
    pub ul_bits_per_request: f64,
    /// Bits carried downlink per user request.
    pub dl_bits_per_request: f64,
    /// Representative transport packet size in bits.
    pub packet_bits: f64,
    /// Target frame rate (only meaningful for HVS).
    pub target_fps: f64,
}

impl SliceWorkload {
    /// The workload model of the given slice kind, matching the paper's
    /// applications (§7.1): 540p frames uplink for MAR, ~5 Mbit/s 1080p
    /// chunks downlink for HVS, 1-kbit control messages for RDC.
    pub fn for_kind(kind: SliceKind) -> Self {
        match kind {
            SliceKind::Mar => Self {
                ul_bits_per_request: 800_000.0, // ≈ 100 kB 540p frame
                dl_bits_per_request: 80_000.0,  // matched-object result
                packet_bits: 12_000.0,
                target_fps: 0.0,
            },
            SliceKind::Hvs => Self {
                ul_bits_per_request: 8_000.0,     // chunk request
                dl_bits_per_request: 5_000_000.0, // 1 s of 1080p video
                packet_bits: 12_000.0,
                target_fps: 30.0,
            },
            SliceKind::Rdc => Self {
                ul_bits_per_request: 1_000.0, // 1 kbit raw data
                dl_bits_per_request: 1_000.0, // 1 kbit control message
                packet_bits: 1_000.0,
                target_fps: 0.0,
            },
        }
    }

    /// Uplink offered load in Mbps at the given arrival rate (users/s).
    pub fn ul_demand_mbps(&self, arrival_rate: f64) -> f64 {
        arrival_rate * self.ul_bits_per_request / 1e6
    }

    /// Downlink offered load in Mbps at the given arrival rate (users/s).
    pub fn dl_demand_mbps(&self, arrival_rate: f64) -> f64 {
        arrival_rate * self.dl_bits_per_request / 1e6
    }

    /// Transport packet rate (packets/s) at the given arrival rate.
    pub fn packet_rate_pps(&self, arrival_rate: f64) -> f64 {
        (self.ul_demand_mbps(arrival_rate) + self.dl_demand_mbps(arrival_rate)) * 1e6
            / self.packet_bits
    }

    /// The edge-compute profile matching this application class.
    pub fn edge_config(kind: SliceKind) -> EdgeConfig {
        match kind {
            SliceKind::Mar => EdgeConfig::mar_default(),
            SliceKind::Hvs => EdgeConfig::hvs_default(),
            SliceKind::Rdc => EdgeConfig::rdc_default(),
        }
    }
}

/// Full configuration of the end-to-end network substrate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Radio access network configuration.
    pub ran: RanConfig,
    /// Transport network configuration.
    pub tn: TnConfig,
    /// Core network user-plane configuration.
    pub cn: CnConfig,
    /// Seed controlling the simulator's internal randomness (channel
    /// evolution, arrival sampling, latency jitter).
    pub seed: u64,
}

impl NetworkConfig {
    /// The default testbed: 4G LTE with adaptive MCS, 1-Gbps transport,
    /// workstation-hosted CN and edge.
    pub fn testbed_default() -> Self {
        Self {
            ran: RanConfig::lte_default(),
            tn: TnConfig::testbed_default(),
            cn: CnConfig::testbed_default(),
            seed: 0,
        }
    }

    /// The 5G NR variant of the testbed.
    pub fn testbed_nr() -> Self {
        Self {
            ran: RanConfig::nr_default(),
            ..Self::testbed_default()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different RAN configuration.
    pub fn with_ran(mut self, ran: RanConfig) -> Self {
        self.ran = ran;
        self
    }
}

/// Detailed breakdown of one simulated slot (useful for debugging and for
/// the fine-grained figures).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotBreakdown {
    /// Uplink radio delay contribution in ms.
    pub ul_radio_ms: f64,
    /// Downlink radio delay contribution in ms.
    pub dl_radio_ms: f64,
    /// Transport delay contribution (both directions) in ms.
    pub transport_ms: f64,
    /// Core-network processing contribution (both directions) in ms.
    pub core_ms: f64,
    /// Edge-compute contribution in ms.
    pub edge_ms: f64,
    /// End-to-end service ratio (fraction of requests fully delivered).
    pub service_ratio: f64,
}

/// The end-to-end network simulator standing in for the OAI / ODL /
/// OpenAir-CN / Docker testbed.
///
/// Serializes its complete dynamic state — channel AR(1) positions and the
/// RNG stream — so a deserialized simulator continues bit-for-bit where the
/// original left off (the checkpoint/replay contract).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkSimulator {
    config: NetworkConfig,
    channels: BTreeMap<SliceKind, ChannelModel>,
    rng: ChaCha8Rng,
}

impl NetworkSimulator {
    /// Creates a simulator with per-slice channel models at the testbed
    /// default and the configured seed.
    pub fn new(config: NetworkConfig) -> Self {
        let mut channels = BTreeMap::new();
        for kind in SliceKind::ALL {
            channels.insert(kind, ChannelModel::testbed_default());
        }
        Self {
            channels,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            config,
        }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Overrides the channel model of one slice (e.g. a poor-coverage slice).
    pub fn set_channel(&mut self, kind: SliceKind, channel: ChannelModel) {
        self.channels.insert(kind, channel);
    }

    /// Resets the simulator's random state (new episode with fresh dynamics).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = ChaCha8Rng::seed_from_u64(seed);
    }

    /// Simulates one configuration slot for one slice and returns the KPI
    /// record its application would report, plus the latency breakdown.
    ///
    /// `arrival_rate` is the slot's mean user-request rate in users per
    /// second (from the slice's traffic trace).
    pub fn step_slice_detailed(
        &mut self,
        kind: SliceKind,
        sla: &Sla,
        action: &Action,
        arrival_rate: f64,
    ) -> (SlotKpi, SlotBreakdown) {
        let workload = SliceWorkload::for_kind(kind);
        let channel = self
            .channels
            .get_mut(&kind)
            .expect("every slice kind has a channel model");
        channel.step(&mut self.rng);
        let cqi = channel.current_cqi_index();
        let channel_quality = channel.normalized_quality();

        let arrival_rate = arrival_rate.max(0.0);
        let offered_requests =
            PoissonArrivals::new(arrival_rate, SLOT_SECONDS).sample_count(&mut self.rng);

        let ul_demand = workload.ul_demand_mbps(arrival_rate);
        let dl_demand = workload.dl_demand_mbps(arrival_rate);

        let ul = self.config.ran.evaluate(
            Direction::Uplink,
            action.ul_bandwidth,
            action.ul_mcs_offset_steps(),
            action.ul_scheduler_kind(),
            cqi,
            ul_demand,
            workload.ul_bits_per_request,
        );
        let dl = self.config.ran.evaluate(
            Direction::Downlink,
            action.dl_bandwidth,
            action.dl_mcs_offset_steps(),
            action.dl_scheduler_kind(),
            cqi,
            dl_demand,
            workload.dl_bits_per_request,
        );
        let tn = self.config.tn.evaluate(
            action.tn_bandwidth,
            action.tn_path,
            ul_demand + dl_demand,
            workload.packet_bits,
        );
        let cn = self
            .config
            .cn
            .evaluate(action.cpu, workload.packet_rate_pps(arrival_rate));
        let edge = SliceWorkload::edge_config(kind).evaluate(action.cpu, action.ram, arrival_rate);

        // Latency jitter from the RAN profile (scheduling randomness).
        let jitter =
            self.config.ran.profile.latency_jitter_ms * crate::standard_normal(&mut self.rng).abs();

        let breakdown = SlotBreakdown {
            ul_radio_ms: ul.avg_delay_ms,
            dl_radio_ms: dl.avg_delay_ms,
            transport_ms: 2.0 * tn.avg_delay_ms,
            core_ms: 2.0 * cn.avg_delay_ms,
            edge_ms: edge.avg_delay_ms,
            service_ratio: (1.0 - ul.residual_loss_prob)
                * (1.0 - dl.residual_loss_prob)
                * (1.0 - tn.loss_prob)
                * (1.0 - cn.loss_prob)
                * (1.0 - edge.loss_prob),
        };

        let rtt_ms = breakdown.ul_radio_ms
            + breakdown.dl_radio_ms
            + breakdown.transport_ms
            + breakdown.core_ms
            + breakdown.edge_ms
            + jitter;

        let served_requests = (offered_requests as f64 * breakdown.service_ratio)
            .round()
            .min(offered_requests as f64) as u64;

        // Raw performance in the slice's natural unit. Idle slots (no offered
        // traffic) report the SLA target itself: the application has nothing
        // to complain about, so the slot is cost-free.
        let raw_performance = if arrival_rate <= 0.0 {
            match kind {
                SliceKind::Mar => sla.performance_target,
                SliceKind::Hvs => workload.target_fps,
                SliceKind::Rdc => 1.0,
            }
        } else {
            match kind {
                SliceKind::Mar => {
                    // Dropped frames are counted as if they had to be resent:
                    // the effective latency grows as the service ratio falls.
                    rtt_ms / breakdown.service_ratio.max(1e-3)
                }
                SliceKind::Hvs => {
                    let rate_factor = if dl_demand > 0.0 {
                        (dl.goodput_mbps / dl_demand).min(1.0)
                    } else {
                        1.0
                    };
                    let delivery_factor =
                        (1.0 - tn.loss_prob) * (1.0 - cn.loss_prob) * (1.0 - edge.loss_prob);
                    workload.target_fps * rate_factor * delivery_factor
                }
                SliceKind::Rdc => breakdown.service_ratio,
            }
        };

        let kpi = SlotKpi::new(
            sla,
            action,
            raw_performance,
            offered_requests,
            served_requests,
            rtt_ms,
            ul.goodput_mbps,
            dl.goodput_mbps,
            if kind == SliceKind::Hvs {
                raw_performance
            } else {
                0.0
            },
            if kind == SliceKind::Rdc {
                raw_performance
            } else {
                breakdown.service_ratio
            },
            ul.retransmission_prob.max(dl.retransmission_prob),
            channel_quality,
            0.5 * (ul.utilization + dl.utilization),
            edge.workload.max(cn.offered_load.min(2.0)),
        );
        (kpi, breakdown)
    }

    /// Simulates one configuration slot for one slice (KPI only).
    pub fn step_slice(
        &mut self,
        kind: SliceKind,
        sla: &Sla,
        action: &Action,
        arrival_rate: f64,
    ) -> SlotKpi {
        self.step_slice_detailed(kind, sla, action, arrival_rate).0
    }

    /// Samples a ping-style round-trip time through RAN + TN + CN (no edge
    /// processing), used for the Fig. 16 latency CDF.
    pub fn ping_rtt_ms(&mut self) -> f64 {
        let base = self.config.ran.base_rtt_ms()
            + 2.0 * self.config.tn.base_delay_ms
            + 2.0 * self.config.cn.base_delay_ms;
        let jitter = self.config.ran.profile.latency_jitter_ms
            * crate::standard_normal(&mut self.rng).abs()
            * 2.0;
        base + jitter + self.rng.gen::<f64>() * 2.0
    }

    /// Saturation throughput (Mbps) a slice would achieve in the given
    /// direction with the given bandwidth share — the RDM isolation
    /// measurement of Fig. 5.
    pub fn saturation_throughput_mbps(
        &mut self,
        kind: SliceKind,
        share: f64,
        direction: Direction,
    ) -> f64 {
        let channel = self.channels.get_mut(&kind).expect("channel exists");
        let cqi = channel.current_cqi_index();
        let out = self.config.ran.evaluate(
            direction,
            share,
            0,
            onslicing_slices::SchedulerKind::ProportionalFair,
            cqi,
            1e6, // effectively infinite offered load
            12_000.0,
        );
        out.goodput_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> NetworkSimulator {
        NetworkSimulator::new(NetworkConfig::testbed_default().with_seed(7))
    }

    /// A generously provisioned action for any slice.
    fn generous() -> Action {
        Action {
            ul_bandwidth: 0.6,
            ul_mcs_offset: 0.0,
            ul_scheduler: 0.5,
            dl_bandwidth: 0.6,
            dl_mcs_offset: 0.0,
            dl_scheduler: 0.5,
            tn_bandwidth: 0.2,
            tn_path: 0.5,
            cpu: 0.6,
            ram: 0.5,
        }
    }

    /// A starved action.
    fn starved() -> Action {
        Action {
            ul_bandwidth: 0.02,
            ul_mcs_offset: 0.0,
            ul_scheduler: 0.5,
            dl_bandwidth: 0.02,
            dl_mcs_offset: 0.0,
            dl_scheduler: 0.5,
            tn_bandwidth: 0.002,
            tn_path: 0.0,
            cpu: 0.03,
            ram: 0.03,
        }
    }

    #[test]
    fn generous_mar_allocation_meets_the_latency_sla() {
        let mut s = sim();
        let sla = Sla::for_kind(SliceKind::Mar);
        let kpi = s.step_slice(SliceKind::Mar, &sla, &generous(), 5.0);
        assert!(kpi.validate().is_ok());
        assert!(
            kpi.avg_latency_ms < 500.0,
            "latency {} should meet the SLA",
            kpi.avg_latency_ms
        );
        assert_eq!(kpi.cost, 0.0);
    }

    #[test]
    fn starved_mar_allocation_violates_the_latency_sla() {
        let mut s = sim();
        let sla = Sla::for_kind(SliceKind::Mar);
        let kpi = s.step_slice(SliceKind::Mar, &sla, &starved(), 5.0);
        assert!(kpi.avg_latency_ms > 500.0);
        assert!(kpi.cost > 0.3);
    }

    #[test]
    fn generous_hvs_allocation_delivers_full_frame_rate() {
        let mut s = sim();
        let sla = Sla::for_kind(SliceKind::Hvs);
        let kpi = s.step_slice(SliceKind::Hvs, &sla, &generous(), 2.0);
        assert!(kpi.delivered_fps > 29.0, "fps {}", kpi.delivered_fps);
        // A sliver of residual radio loss is unavoidable; the cost must be
        // negligible relative to the 5 % SLA threshold.
        assert!(kpi.cost < 0.005, "cost {}", kpi.cost);
    }

    #[test]
    fn starved_hvs_allocation_drops_frames() {
        let mut s = sim();
        let sla = Sla::for_kind(SliceKind::Hvs);
        let kpi = s.step_slice(SliceKind::Hvs, &sla, &starved(), 2.0);
        assert!(kpi.delivered_fps < 25.0, "fps {}", kpi.delivered_fps);
        assert!(kpi.cost > 0.1);
    }

    #[test]
    fn rdc_needs_the_mcs_offset_to_reach_five_nines() {
        let mut s = sim();
        let sla = Sla::for_kind(SliceKind::Rdc);
        let mut without_offset = generous();
        without_offset.ul_mcs_offset = 0.0;
        without_offset.dl_mcs_offset = 0.0;
        let mut with_offset = generous();
        with_offset.ul_mcs_offset = 0.6; // offset 6
        with_offset.dl_mcs_offset = 0.6;
        let kpi_without = s.step_slice(SliceKind::Rdc, &sla, &without_offset, 100.0);
        let kpi_with = s.step_slice(SliceKind::Rdc, &sla, &with_offset, 100.0);
        assert!(kpi_without.reliability < 0.9999);
        assert!(kpi_without.cost > 0.1);
        assert!(
            kpi_with.reliability > 0.99999,
            "reliability {}",
            kpi_with.reliability
        );
        assert_eq!(kpi_with.cost, 0.0);
    }

    #[test]
    fn more_resources_never_hurt_performance() {
        let mut s = sim();
        let sla = Sla::for_kind(SliceKind::Mar);
        let mid = Action::uniform(0.3);
        let kpi_mid = s.step_slice(SliceKind::Mar, &sla, &mid, 5.0);
        s.reseed(7);
        let kpi_big = s.step_slice(SliceKind::Mar, &sla, &generous(), 5.0);
        assert!(kpi_big.avg_latency_ms <= kpi_mid.avg_latency_ms * 1.2);
    }

    #[test]
    fn idle_slot_is_cost_free() {
        let mut s = sim();
        for kind in SliceKind::ALL {
            let sla = Sla::for_kind(kind);
            let kpi = s.step_slice(kind, &sla, &generous(), 0.0);
            assert_eq!(kpi.cost, 0.0, "{kind}: idle slot should cost nothing");
            assert_eq!(kpi.offered_requests, 0);
        }
    }

    #[test]
    fn nr_ping_is_faster_than_lte_ping() {
        let mut lte = NetworkSimulator::new(NetworkConfig::testbed_default().with_seed(3));
        let mut nr = NetworkSimulator::new(NetworkConfig::testbed_nr().with_seed(3));
        let lte_avg: f64 = (0..200).map(|_| lte.ping_rtt_ms()).sum::<f64>() / 200.0;
        let nr_avg: f64 = (0..200).map(|_| nr.ping_rtt_ms()).sum::<f64>() / 200.0;
        assert!(
            nr_avg < lte_avg,
            "NR ping {nr_avg} should beat LTE ping {lte_avg}"
        );
        assert!(
            lte_avg > 20.0 && lte_avg < 45.0,
            "LTE ping {lte_avg} should be tens of ms"
        );
        assert!(
            nr_avg > 5.0 && nr_avg < 25.0,
            "NR ping {nr_avg} should be ~10-20 ms"
        );
    }

    #[test]
    fn saturation_throughput_scales_with_the_share() {
        let mut s = sim();
        let half = s.saturation_throughput_mbps(SliceKind::Hvs, 0.5, Direction::Downlink);
        let full = s.saturation_throughput_mbps(SliceKind::Hvs, 1.0, Direction::Downlink);
        assert!(full > 1.8 * half);
        assert!(
            full > 30.0,
            "full-carrier DL throughput {full} Mbps should be tens of Mbps"
        );
    }

    #[test]
    fn simulation_is_reproducible_for_a_fixed_seed() {
        let mut a = NetworkSimulator::new(NetworkConfig::testbed_default().with_seed(11));
        let mut b = NetworkSimulator::new(NetworkConfig::testbed_default().with_seed(11));
        let sla = Sla::for_kind(SliceKind::Mar);
        for _ in 0..5 {
            let ka = a.step_slice(SliceKind::Mar, &sla, &generous(), 3.0);
            let kb = b.step_slice(SliceKind::Mar, &sla, &generous(), 3.0);
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn breakdown_components_sum_to_the_reported_latency_up_to_jitter() {
        let mut s = sim();
        let sla = Sla::for_kind(SliceKind::Mar);
        let (kpi, b) = s.step_slice_detailed(SliceKind::Mar, &sla, &generous(), 5.0);
        let sum = b.ul_radio_ms + b.dl_radio_ms + b.transport_ms + b.core_ms + b.edge_ms;
        assert!(kpi.avg_latency_ms >= sum - 1e-9);
        assert!(
            kpi.avg_latency_ms <= sum + 5.0 * 4.0 + 1.0,
            "jitter should be bounded"
        );
    }
}
