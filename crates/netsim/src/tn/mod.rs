//! Transport network model (the substrate the TDM virtualizes).
//!
//! The testbed's transport network is a Ruckus ICX SDN switch controlled by
//! OpenDayLight: per-slice OpenFlow *meters* cap the slice's data rate and a
//! reserved path can be pinned for the slice (§6). At the orchestration
//! timescale the relevant effects are
//!
//! * the meter limit (`U_b` × port capacity) versus the slice's offered load —
//!   an M/M/1-style queueing delay that explodes as the meter saturates, and
//! * the reserved-path share (`U_l`) — more reservation means the slice's
//!   flows dodge cross-traffic and see a smaller, more deterministic
//!   switching delay.

use serde::{Deserialize, Serialize};

/// Outcome of carrying a slice's traffic across the transport network for one
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TnOutcome {
    /// Meter limit granted to the slice, in Mbps.
    pub capacity_mbps: f64,
    /// Offered load over the meter limit.
    pub offered_load: f64,
    /// Traffic actually carried, in Mbps.
    pub goodput_mbps: f64,
    /// Average one-way transport delay in milliseconds.
    pub avg_delay_ms: f64,
    /// Fraction of traffic dropped by the meter.
    pub loss_prob: f64,
}

/// Configuration of the transport substrate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TnConfig {
    /// Capacity of the switch port connecting RAN and CN, in Mbps (1 Gbps on
    /// the testbed).
    pub port_capacity_mbps: f64,
    /// Fixed per-hop switching/propagation delay in milliseconds.
    pub base_delay_ms: f64,
    /// Additional worst-case queueing delay caused by cross-traffic when no
    /// path is reserved, in milliseconds.
    pub cross_traffic_delay_ms: f64,
    /// Cap on the M/M/1 queueing multiplier.
    pub max_queue_multiplier: f64,
}

impl TnConfig {
    /// The testbed's single 1-Gbps switch.
    pub fn testbed_default() -> Self {
        Self {
            port_capacity_mbps: 1_000.0,
            base_delay_ms: 0.6,
            cross_traffic_delay_ms: 4.0,
            max_queue_multiplier: 25.0,
        }
    }

    /// Evaluates the transport service for one slice and one slot.
    ///
    /// * `bandwidth_share` — the slice's meter share of the port (`U_b`).
    /// * `path_share` — the slice's reserved-path share (`U_l`).
    /// * `demand_mbps` — offered load.
    /// * `packet_bits` — representative packet size in bits (for the
    ///   serialization component of the delay).
    pub fn evaluate(
        &self,
        bandwidth_share: f64,
        path_share: f64,
        demand_mbps: f64,
        packet_bits: f64,
    ) -> TnOutcome {
        let share = bandwidth_share.clamp(0.0, 1.0);
        let path = path_share.clamp(0.0, 1.0);
        let capacity = self.port_capacity_mbps * share;
        if capacity <= 1e-9 {
            return TnOutcome {
                capacity_mbps: 0.0,
                offered_load: if demand_mbps > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                },
                goodput_mbps: 0.0,
                avg_delay_ms: self.base_delay_ms
                    + self.cross_traffic_delay_ms
                    + self.max_queue_multiplier,
                loss_prob: if demand_mbps > 0.0 { 1.0 } else { 0.0 },
            };
        }
        let rho = demand_mbps / capacity;
        let carried = demand_mbps.min(capacity);
        let serialization_ms = packet_bits / (capacity * 1e6) * 1e3;
        let queue_mult = if rho < 1.0 {
            (1.0 / (1.0 - rho)).min(self.max_queue_multiplier)
        } else {
            self.max_queue_multiplier
        };
        // Reserving more of a path removes the cross-traffic component.
        let cross_traffic = self.cross_traffic_delay_ms * (1.0 - path);
        let avg_delay_ms = self.base_delay_ms + cross_traffic + serialization_ms * queue_mult;
        let loss = if rho > 1.0 { 1.0 - 1.0 / rho } else { 0.0 };
        TnOutcome {
            capacity_mbps: capacity,
            offered_load: rho,
            goodput_mbps: carried,
            avg_delay_ms,
            loss_prob: loss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_limit_is_share_times_port_capacity() {
        let tn = TnConfig::testbed_default();
        let out = tn.evaluate(0.05, 0.5, 10.0, 12_000.0);
        assert!((out.capacity_mbps - 50.0).abs() < 1e-9);
        assert!(out.loss_prob == 0.0);
    }

    #[test]
    fn reserving_a_path_reduces_delay() {
        let tn = TnConfig::testbed_default();
        let unreserved = tn.evaluate(0.05, 0.0, 10.0, 12_000.0);
        let reserved = tn.evaluate(0.05, 1.0, 10.0, 12_000.0);
        assert!(reserved.avg_delay_ms < unreserved.avg_delay_ms);
        assert!((unreserved.avg_delay_ms - reserved.avg_delay_ms - 4.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_the_meter_causes_loss_and_large_delay() {
        let tn = TnConfig::testbed_default();
        let ok = tn.evaluate(0.02, 0.5, 10.0, 12_000.0);
        let bad = tn.evaluate(0.005, 0.5, 10.0, 12_000.0);
        assert!(bad.offered_load > 1.0);
        assert!(bad.loss_prob > 0.0);
        assert!(bad.avg_delay_ms > ok.avg_delay_ms);
        assert!(bad.goodput_mbps < 10.0);
    }

    #[test]
    fn zero_share_drops_everything() {
        let tn = TnConfig::testbed_default();
        let out = tn.evaluate(0.0, 0.5, 5.0, 12_000.0);
        assert_eq!(out.goodput_mbps, 0.0);
        assert_eq!(out.loss_prob, 1.0);
    }

    #[test]
    fn idle_slice_sees_only_base_and_serialization_delay() {
        let tn = TnConfig::testbed_default();
        let out = tn.evaluate(0.1, 1.0, 0.0, 12_000.0);
        assert_eq!(out.loss_prob, 0.0);
        // 12 kbit over a 100 Mbps meter serializes in 0.12 ms.
        assert!((out.avg_delay_ms - tn.base_delay_ms - 0.12).abs() < 1e-9);
    }

    #[test]
    fn delay_grows_monotonically_with_load() {
        let tn = TnConfig::testbed_default();
        let mut prev = 0.0;
        for demand in [1.0, 5.0, 10.0, 20.0, 40.0] {
            let out = tn.evaluate(0.05, 0.5, demand, 12_000.0);
            assert!(out.avg_delay_ms >= prev);
            prev = out.avg_delay_ms;
        }
    }
}
