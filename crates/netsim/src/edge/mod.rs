//! Edge computing model (the substrate the EDM virtualizes).
//!
//! Each slice's edge server runs in a Docker container co-located with its
//! SPGW-U; the EDM adjusts its CPU and RAM allocation at runtime via
//! `docker update` (§6). The dominant effect at the orchestration timescale
//! is compute latency: the MAR back-end extracts ORB features and matches
//! them against a dataset, so its service rate scales with the CPU share,
//! while the RAM share bounds how many requests can be processed or buffered
//! concurrently.

use serde::{Deserialize, Serialize};

/// Outcome of edge processing for one slice and one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeOutcome {
    /// Request service rate granted to the slice, in requests per second.
    pub service_rate_rps: f64,
    /// Offered request rate over the service rate.
    pub offered_load: f64,
    /// Average per-request processing delay (queueing + service) in
    /// milliseconds.
    pub avg_delay_ms: f64,
    /// Fraction of requests rejected because the server is saturated or out
    /// of memory.
    pub loss_prob: f64,
    /// Normalized server workload (`offered / capacity`, capped at 2).
    pub workload: f64,
}

/// Configuration of the edge-compute substrate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeConfig {
    /// Requests per second a fully-provisioned container (CPU share = 1) can
    /// serve for this application class.
    pub max_service_rate_rps: f64,
    /// Maximum number of concurrently held requests at RAM share = 1.
    pub max_concurrent_requests: f64,
    /// Cap on the M/M/1 queueing multiplier.
    pub max_queue_multiplier: f64,
}

impl EdgeConfig {
    /// Profile for the MAR back-end (ORB feature extraction + matching):
    /// a full CPU sustains ≈ 40 frames/s.
    pub fn mar_default() -> Self {
        Self {
            max_service_rate_rps: 40.0,
            max_concurrent_requests: 64.0,
            max_queue_multiplier: 25.0,
        }
    }

    /// Profile for the HVS streaming server: pushing chunks is cheap,
    /// a full CPU feeds ≈ 120 chunk requests/s.
    pub fn hvs_default() -> Self {
        Self {
            max_service_rate_rps: 120.0,
            max_concurrent_requests: 96.0,
            max_queue_multiplier: 25.0,
        }
    }

    /// Profile for the RDC control server: tiny messages, very high rate.
    pub fn rdc_default() -> Self {
        Self {
            max_service_rate_rps: 4_000.0,
            max_concurrent_requests: 512.0,
            max_queue_multiplier: 25.0,
        }
    }

    /// Evaluates edge processing for one slice and one slot.
    ///
    /// * `cpu_share` — CPU share of the container (`U_c`).
    /// * `ram_share` — RAM share of the container (`U_r`).
    /// * `request_rate_rps` — offered request rate.
    pub fn evaluate(&self, cpu_share: f64, ram_share: f64, request_rate_rps: f64) -> EdgeOutcome {
        let cpu = cpu_share.clamp(0.0, 1.0);
        let ram = ram_share.clamp(0.0, 1.0);
        let cpu_rate = self.max_service_rate_rps * cpu;
        // RAM bounds the number of in-flight requests; with Little's law the
        // sustainable rate is `concurrency / service_time = concurrency · rate`.
        // Model it as a second cap proportional to the RAM share.
        let ram_rate = self.max_service_rate_rps * 2.0 * ram;
        let capacity = cpu_rate.min(ram_rate);
        if capacity <= 1e-9 {
            return EdgeOutcome {
                service_rate_rps: 0.0,
                offered_load: if request_rate_rps > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                },
                avg_delay_ms: 5_000.0,
                loss_prob: if request_rate_rps > 0.0 { 1.0 } else { 0.0 },
                workload: if request_rate_rps > 0.0 { 2.0 } else { 0.0 },
            };
        }
        let rho = request_rate_rps / capacity;
        let base_service_ms = 1_000.0 / capacity;
        let queue_mult = if rho < 1.0 {
            (1.0 / (1.0 - rho)).min(self.max_queue_multiplier)
        } else {
            self.max_queue_multiplier
        };
        let loss = if rho > 1.0 { 1.0 - 1.0 / rho } else { 0.0 };
        EdgeOutcome {
            service_rate_rps: capacity,
            offered_load: rho,
            avg_delay_ms: base_service_ms * queue_mult,
            loss_prob: loss,
            workload: rho.min(2.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_cpu_reduces_processing_delay() {
        let edge = EdgeConfig::mar_default();
        let low = edge.evaluate(0.2, 1.0, 5.0);
        let high = edge.evaluate(0.6, 1.0, 5.0);
        assert!(high.avg_delay_ms < low.avg_delay_ms);
        assert_eq!(low.loss_prob, 0.0);
    }

    #[test]
    fn mar_latency_scale_is_plausible() {
        // At peak MAR traffic (5 frames/s) and a quarter of the CPU, the M/M/1
        // sojourn time should be on the order of 200 ms — the same order as
        // the paper's 500 ms end-to-end budget.
        let edge = EdgeConfig::mar_default();
        let out = edge.evaluate(0.25, 1.0, 5.0);
        assert!(
            out.avg_delay_ms > 100.0 && out.avg_delay_ms < 400.0,
            "delay {}",
            out.avg_delay_ms
        );
    }

    #[test]
    fn insufficient_ram_caps_the_service_rate() {
        let edge = EdgeConfig::mar_default();
        let plenty = edge.evaluate(0.5, 1.0, 5.0);
        let starved = edge.evaluate(0.5, 0.05, 5.0);
        assert!(starved.service_rate_rps < plenty.service_rate_rps);
        assert!(starved.avg_delay_ms > plenty.avg_delay_ms);
    }

    #[test]
    fn overload_drops_requests() {
        let edge = EdgeConfig::mar_default();
        let out = edge.evaluate(0.05, 1.0, 10.0); // capacity 2 rps << 10 rps
        assert!(out.offered_load > 1.0);
        assert!(out.loss_prob > 0.5);
        assert!(out.workload >= 1.0);
    }

    #[test]
    fn zero_allocation_rejects_everything() {
        let edge = EdgeConfig::rdc_default();
        let out = edge.evaluate(0.0, 0.5, 100.0);
        assert_eq!(out.loss_prob, 1.0);
        let idle = edge.evaluate(0.0, 0.0, 0.0);
        assert_eq!(idle.loss_prob, 0.0);
    }

    #[test]
    fn rdc_server_is_far_from_saturation_at_peak_traffic() {
        let edge = EdgeConfig::rdc_default();
        let out = edge.evaluate(0.1, 0.1, 100.0);
        assert!(out.offered_load < 0.5);
        assert_eq!(out.loss_prob, 0.0);
    }
}
