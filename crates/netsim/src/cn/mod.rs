//! Core network model (the substrate the CDM virtualizes).
//!
//! The testbed runs a CUPS-split OpenAir-CN: shared control plane (HSS, MME,
//! SPGW-C) and a per-slice pool of SPGW-U user-plane instances, each a Docker
//! container co-located with the slice's edge server (§6). Slice users are
//! mapped to the pool by IMSI and attached to an instance round-robin.
//!
//! At the orchestration timescale the relevant behaviour is packet-processing
//! latency and loss as a function of the CPU share granted to the slice's
//! SPGW-U containers, which this module models as an M/M/1 processor-sharing
//! queue, plus a small [`SpgwuPool`] bookkeeping structure that the CDM uses
//! for instance management and user attachment.

use serde::{Deserialize, Serialize};

/// Outcome of user-plane packet processing for one slice and one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CnOutcome {
    /// Packet-processing capacity granted to the slice, in packets per second.
    pub capacity_pps: f64,
    /// Offered packet rate over capacity.
    pub offered_load: f64,
    /// Average per-packet processing delay (one direction) in milliseconds.
    pub avg_delay_ms: f64,
    /// Fraction of packets dropped because the user plane is saturated.
    pub loss_prob: f64,
}

/// Configuration of the core-network user plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CnConfig {
    /// Packet-processing rate of a fully-provisioned SPGW-U (CPU share = 1),
    /// in packets per second.
    pub max_pps: f64,
    /// Base per-packet processing delay at negligible load, in milliseconds.
    pub base_delay_ms: f64,
    /// Cap on the M/M/1 queueing multiplier.
    pub max_queue_multiplier: f64,
}

impl CnConfig {
    /// The testbed's workstation-hosted SPGW-U.
    pub fn testbed_default() -> Self {
        Self {
            max_pps: 50_000.0,
            base_delay_ms: 0.3,
            max_queue_multiplier: 25.0,
        }
    }

    /// Evaluates packet processing for one slice and one slot.
    ///
    /// * `cpu_share` — the CPU share granted to the slice's SPGW-U (`U_c`).
    /// * `packet_rate_pps` — offered packet rate.
    pub fn evaluate(&self, cpu_share: f64, packet_rate_pps: f64) -> CnOutcome {
        let share = cpu_share.clamp(0.0, 1.0);
        let capacity = self.max_pps * share;
        if capacity <= 1e-9 {
            return CnOutcome {
                capacity_pps: 0.0,
                offered_load: if packet_rate_pps > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                },
                avg_delay_ms: self.base_delay_ms * self.max_queue_multiplier,
                loss_prob: if packet_rate_pps > 0.0 { 1.0 } else { 0.0 },
            };
        }
        let rho = packet_rate_pps / capacity;
        let queue_mult = if rho < 1.0 {
            (1.0 / (1.0 - rho)).min(self.max_queue_multiplier)
        } else {
            self.max_queue_multiplier
        };
        let loss = if rho > 1.0 { 1.0 - 1.0 / rho } else { 0.0 };
        CnOutcome {
            capacity_pps: capacity,
            offered_load: rho,
            avg_delay_ms: self.base_delay_ms * queue_mult,
            loss_prob: loss,
        }
    }
}

/// SPGW-U scheduling policy used when attaching a new user to an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttachPolicy {
    /// Cycle through the instances (the paper's default during attachment).
    RoundRobin,
    /// Attach to the instance with the fewest users.
    MinLoad,
}

/// A per-slice pool of SPGW-U user-plane instances.
///
/// The pool is exclusively associated with one slice, which is how the CDM
/// guarantees user-plane isolation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpgwuPool {
    /// Number of users attached to each instance.
    users_per_instance: Vec<u32>,
    policy: AttachPolicy,
    next_rr: usize,
}

impl SpgwuPool {
    /// Creates a pool with `instances` SPGW-U containers.
    ///
    /// # Panics
    /// Panics if `instances` is zero.
    pub fn new(instances: usize, policy: AttachPolicy) -> Self {
        assert!(instances > 0, "a slice needs at least one SPGW-U instance");
        Self {
            users_per_instance: vec![0; instances],
            policy,
            next_rr: 0,
        }
    }

    /// Number of instances in the pool.
    pub fn num_instances(&self) -> usize {
        self.users_per_instance.len()
    }

    /// Total number of attached users.
    pub fn total_users(&self) -> u32 {
        self.users_per_instance.iter().sum()
    }

    /// Users attached to each instance.
    pub fn users_per_instance(&self) -> &[u32] {
        &self.users_per_instance
    }

    /// Attaches a user and returns the index of the chosen instance.
    pub fn attach_user(&mut self) -> usize {
        let idx = match self.policy {
            AttachPolicy::RoundRobin => {
                let idx = self.next_rr;
                self.next_rr = (self.next_rr + 1) % self.users_per_instance.len();
                idx
            }
            AttachPolicy::MinLoad => self
                .users_per_instance
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map(|(i, _)| i)
                .expect("pool is non-empty"),
        };
        self.users_per_instance[idx] += 1;
        idx
    }

    /// Detaches a user from the given instance (no-op when already empty).
    pub fn detach_user(&mut self, instance: usize) {
        if let Some(n) = self.users_per_instance.get_mut(instance) {
            *n = n.saturating_sub(1);
        }
    }

    /// Largest-minus-smallest attached-user difference across instances; a
    /// measure of load balance (0 = perfectly balanced).
    pub fn imbalance(&self) -> u32 {
        let max = self.users_per_instance.iter().max().copied().unwrap_or(0);
        let min = self.users_per_instance.iter().min().copied().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_cpu_means_lower_processing_delay() {
        let cn = CnConfig::testbed_default();
        let low = cn.evaluate(0.1, 2_000.0);
        let high = cn.evaluate(0.5, 2_000.0);
        assert!(high.avg_delay_ms < low.avg_delay_ms);
        assert!(high.capacity_pps > low.capacity_pps);
    }

    #[test]
    fn saturation_drops_packets() {
        let cn = CnConfig::testbed_default();
        let out = cn.evaluate(0.01, 5_000.0); // capacity 500 pps << 5000
        assert!(out.offered_load > 1.0);
        assert!(out.loss_prob > 0.8);
    }

    #[test]
    fn zero_cpu_serves_nothing() {
        let cn = CnConfig::testbed_default();
        let out = cn.evaluate(0.0, 100.0);
        assert_eq!(out.loss_prob, 1.0);
        assert_eq!(out.capacity_pps, 0.0);
    }

    #[test]
    fn idle_traffic_incurs_no_loss() {
        let cn = CnConfig::testbed_default();
        let out = cn.evaluate(0.2, 0.0);
        assert_eq!(out.loss_prob, 0.0);
        assert!((out.avg_delay_ms - cn.base_delay_ms).abs() < 1e-9);
    }

    #[test]
    fn round_robin_attachment_cycles_through_instances() {
        let mut pool = SpgwuPool::new(3, AttachPolicy::RoundRobin);
        let picks: Vec<usize> = (0..6).map(|_| pool.attach_user()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(pool.total_users(), 6);
        assert_eq!(pool.imbalance(), 0);
    }

    #[test]
    fn min_load_attachment_fills_the_emptiest_instance() {
        let mut pool = SpgwuPool::new(2, AttachPolicy::MinLoad);
        pool.attach_user();
        pool.attach_user();
        pool.attach_user();
        assert_eq!(pool.imbalance(), 1);
        pool.detach_user(0);
        assert_eq!(pool.total_users(), 2);
    }

    #[test]
    fn detach_from_empty_instance_is_a_noop() {
        let mut pool = SpgwuPool::new(2, AttachPolicy::RoundRobin);
        pool.detach_user(1);
        assert_eq!(pool.total_users(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one SPGW-U instance")]
    fn empty_pool_is_rejected() {
        let _ = SpgwuPool::new(0, AttachPolicy::RoundRobin);
    }
}
