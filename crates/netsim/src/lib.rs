//! # onslicing-netsim
//!
//! End-to-end mobile network simulator standing in for the OnSlicing paper's
//! hardware testbed (OpenAirInterface eNB/gNB + USRP B210 radios,
//! OpenDayLight-controlled SDN switch, OpenAir-CN CUPS core, Docker edge
//! servers).
//!
//! The paper's agents operate at a 15-minute configuration timescale and
//! observe only slot-aggregate statistics, so each technical domain is
//! modeled at that granularity:
//!
//! * [`ran`] — PRB/RBG capacity from CQI→MCS mapping with per-slice MCS
//!   offsets (Fig. 6's retransmission-vs-offset trade-off), per-slice
//!   scheduler choice, HARQ, and LTE/NR carrier profiles calibrated to the
//!   paper's iperf3 measurements;
//! * [`tn`] — OpenFlow-meter bandwidth limiting and path reservation with
//!   M/M/1 queueing;
//! * [`cn`] — SPGW-U packet processing as a CPU-share-scaled queue, plus the
//!   per-slice SPGW-U pool bookkeeping used by the core domain manager;
//! * [`edge`] — Docker-contained edge compute whose service rate scales with
//!   the CPU share and whose concurrency is bounded by the RAM share;
//! * [`pipeline`] — the composition of all four into per-slot
//!   [`SlotKpi`](onslicing_slices::SlotKpi)s for the MAR / HVS / RDC
//!   applications.
//!
//! ```
//! use onslicing_netsim::{NetworkConfig, NetworkSimulator};
//! use onslicing_slices::{Action, SliceKind, Sla};
//!
//! let mut sim = NetworkSimulator::new(NetworkConfig::testbed_default());
//! let sla = Sla::for_kind(SliceKind::Mar);
//! let kpi = sim.step_slice(SliceKind::Mar, &sla, &Action::uniform(0.5), 5.0);
//! assert!(kpi.validate().is_ok());
//! ```

pub mod cn;
pub mod edge;
pub mod pipeline;
pub mod ran;
pub mod tn;

pub use cn::{AttachPolicy, CnConfig, CnOutcome, SpgwuPool};
pub use edge::{EdgeConfig, EdgeOutcome};
pub use pipeline::{NetworkConfig, NetworkSimulator, SliceWorkload, SlotBreakdown};
pub use ran::{ChannelModel, Direction, RanConfig, RatKind, RatProfile};
pub use tn::{TnConfig, TnOutcome};

use rand::Rng;

/// Draws a standard-normal sample using the Box–Muller transform (shared by
/// the channel model and the latency jitter).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}
