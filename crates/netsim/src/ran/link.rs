//! Radio link model: channel quality, retransmission probability and HARQ.
//!
//! The RDM's customized CQI→MCS table lets a slice request an MCS offset to
//! make its transmissions more robust. Fig. 6 of the paper measures the
//! retransmission probability as a function of that offset on the testbed:
//! it decays roughly exponentially from ~10⁻¹ (uplink, offset 0) down to
//! ~10⁻⁵ at offset 10, with the downlink about an order of magnitude lower.
//! [`retransmission_probability`] reproduces that shape.

use rand::Rng;
use serde::{Deserialize, Serialize};

use super::cqi::MAX_CQI;

/// Transmission direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Device to network.
    Uplink,
    /// Network to device.
    Downlink,
}

/// Retransmission probability of a transport block for the given direction
/// and MCS offset, matching the exponential decay of Fig. 6.
///
/// * uplink:    `0.10 · e^(−0.92 · offset)` (≈ 10⁻¹ → ≈ 10⁻⁵ over offsets 0–10)
/// * downlink:  `0.02 · e^(−0.60 · offset)` (≈ 2·10⁻² → ≈ 5·10⁻⁵)
pub fn retransmission_probability(direction: Direction, mcs_offset: u32) -> f64 {
    let o = mcs_offset.min(10) as f64;
    match direction {
        Direction::Uplink => 0.10 * (-0.92 * o).exp(),
        Direction::Downlink => 0.02 * (-0.60 * o).exp(),
    }
}

/// Residual failure probability after HARQ: a block is lost only if all
/// `1 + max_retransmissions` attempts fail independently.
pub fn residual_loss_probability(
    direction: Direction,
    mcs_offset: u32,
    max_retransmissions: u32,
) -> f64 {
    let p = retransmission_probability(direction, mcs_offset);
    p.powi(1 + max_retransmissions as i32)
}

/// Expected number of transmission attempts per block under HARQ with
/// unbounded retries (`1 / (1 − p)`), used to inflate airtime and latency.
pub fn expected_transmissions(direction: Direction, mcs_offset: u32) -> f64 {
    let p = retransmission_probability(direction, mcs_offset);
    1.0 / (1.0 - p.min(0.99))
}

/// A slowly-varying per-slice channel model.
///
/// The paper's devices are stationary inside a Faraday cage, so the channel
/// shows only *moderate* variation (§9 "Dynamics"): the average CQI of a
/// slice's users follows an AR(1) process around a nominal value, clipped to
/// the valid CQI range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Long-run mean CQI of the slice's users.
    pub mean_cqi: f64,
    /// Standard deviation of the stationary CQI distribution.
    pub std_cqi: f64,
    /// AR(1) correlation between consecutive slots (0 = white noise,
    /// 1 = frozen channel).
    pub correlation: f64,
    /// Current average CQI (state of the AR(1) process).
    current_cqi: f64,
}

impl ChannelModel {
    /// Creates a channel model starting at its mean.
    ///
    /// # Panics
    /// Panics if the parameters are outside their valid ranges.
    pub fn new(mean_cqi: f64, std_cqi: f64, correlation: f64) -> Self {
        assert!(
            (1.0..=f64::from(MAX_CQI)).contains(&mean_cqi),
            "mean CQI out of range"
        );
        assert!(std_cqi >= 0.0, "std must be non-negative");
        assert!(
            (0.0..1.0).contains(&correlation),
            "correlation must be in [0, 1)"
        );
        Self {
            mean_cqi,
            std_cqi,
            correlation,
            current_cqi: mean_cqi,
        }
    }

    /// The paper-testbed default: good indoor channel, CQI ≈ 12 ± 1.2,
    /// strongly correlated across 15-minute slots.
    pub fn testbed_default() -> Self {
        Self::new(12.0, 1.2, 0.7)
    }

    /// Current average CQI (continuous, before rounding).
    pub fn current_cqi(&self) -> f64 {
        self.current_cqi
    }

    /// Current average CQI rounded to an integer index in `1..=15`.
    pub fn current_cqi_index(&self) -> u8 {
        self.current_cqi.round().clamp(1.0, f64::from(MAX_CQI)) as u8
    }

    /// Normalized channel quality in `[0, 1]` (CQI 15 → 1.0); this is the
    /// `h_{t−1}` component of the agent state.
    pub fn normalized_quality(&self) -> f64 {
        (self.current_cqi / f64::from(MAX_CQI)).clamp(0.0, 1.0)
    }

    /// Advances the AR(1) process by one slot and returns the new average CQI.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let noise_std = self.std_cqi * (1.0 - self.correlation * self.correlation).sqrt();
        let z = crate::standard_normal(rng);
        let next =
            self.mean_cqi + self.correlation * (self.current_cqi - self.mean_cqi) + noise_std * z;
        self.current_cqi = next.clamp(1.0, f64::from(MAX_CQI));
        self.current_cqi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn retransmission_probability_decays_exponentially_with_offset() {
        let mut prev = 1.0;
        for o in 0..=10 {
            let p = retransmission_probability(Direction::Uplink, o);
            assert!(p < prev, "probability must decrease with the offset");
            prev = p;
        }
        // Fig. 6 endpoints: ~1e-1 at offset 0, ~1e-5 at offset 10 (uplink).
        assert!((retransmission_probability(Direction::Uplink, 0) - 0.1).abs() < 1e-12);
        assert!(retransmission_probability(Direction::Uplink, 10) < 2e-5);
        // Downlink sits roughly an order of magnitude below the uplink.
        assert!(
            retransmission_probability(Direction::Downlink, 0)
                < retransmission_probability(Direction::Uplink, 0)
        );
    }

    #[test]
    fn offsets_beyond_ten_saturate() {
        assert_eq!(
            retransmission_probability(Direction::Uplink, 10),
            retransmission_probability(Direction::Uplink, 50)
        );
    }

    #[test]
    fn residual_loss_shrinks_with_retransmissions() {
        let p0 = residual_loss_probability(Direction::Uplink, 0, 0);
        let p1 = residual_loss_probability(Direction::Uplink, 0, 1);
        let p2 = residual_loss_probability(Direction::Uplink, 0, 2);
        assert!(p1 < p0 && p2 < p1);
        assert!((p1 - 0.01).abs() < 1e-12);
    }

    #[test]
    fn rdc_reliability_needs_a_large_offset() {
        // With one HARQ retransmission, offset 0 gives only ~2 nines while
        // offset 6 comfortably exceeds the 5-nines RDC requirement — this is
        // why the paper's Model_Based baseline picks U_m = 6.
        let low = 1.0 - residual_loss_probability(Direction::Uplink, 0, 1);
        let high = 1.0 - residual_loss_probability(Direction::Uplink, 6, 1);
        assert!(low < 0.999);
        assert!(high > 0.99999);
    }

    #[test]
    fn expected_transmissions_is_at_least_one() {
        for o in 0..=10 {
            let e = expected_transmissions(Direction::Uplink, o);
            assert!((1.0..1.2).contains(&e));
        }
    }

    #[test]
    fn channel_stays_within_cqi_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ch = ChannelModel::testbed_default();
        for _ in 0..1000 {
            let cqi = ch.step(&mut rng);
            assert!((1.0..=15.0).contains(&cqi));
            assert!((0.0..=1.0).contains(&ch.normalized_quality()));
        }
    }

    #[test]
    fn channel_long_run_mean_is_near_the_configured_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ch = ChannelModel::new(10.0, 1.0, 0.5);
        let n = 5000;
        let mean: f64 = (0..n).map(|_| ch.step(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - 10.0).abs() < 0.2,
            "empirical mean {mean} should be near 10"
        );
    }

    #[test]
    fn zero_std_freezes_the_channel() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ch = ChannelModel::new(9.0, 0.0, 0.5);
        for _ in 0..10 {
            assert_eq!(ch.step(&mut rng), 9.0);
        }
    }

    #[test]
    #[should_panic(expected = "mean CQI out of range")]
    fn invalid_mean_cqi_is_rejected() {
        let _ = ChannelModel::new(0.0, 1.0, 0.5);
    }
}
