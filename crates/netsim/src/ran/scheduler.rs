//! MAC scheduler models.
//!
//! The RDM lets every slice choose its own uplink and downlink scheduling
//! algorithm (action dimensions `U_a` and `U_g`). A full per-TTI scheduler is
//! far below the 15-minute timescale the agent operates on, so the simulator
//! captures the *slot-aggregate* effect of the scheduling discipline: how
//! efficiently the slice's PRBs are turned into throughput and how much
//! queueing jitter users experience.
//!
//! * **Round-robin** serves users in turn regardless of channel state; it
//!   wastes some capacity on bad-channel users but gives the most uniform
//!   latency.
//! * **Proportional fair** weighs instantaneous channel against average
//!   throughput; slightly better cell efficiency with near-RR fairness.
//! * **Max-CQI** always serves the best channel; highest aggregate
//!   throughput, but poor-channel users see extra queueing delay.

use serde::{Deserialize, Serialize};

use onslicing_slices::SchedulerKind;

/// Slot-aggregate effect of a scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerEffect {
    /// Multiplier on the slice's link capacity (1.0 = nominal).
    pub throughput_factor: f64,
    /// Multiplier on the per-request queueing delay.
    pub delay_factor: f64,
    /// Multiplier on the delay jitter experienced by the worst users.
    pub jitter_factor: f64,
}

/// Returns the aggregate effect of a scheduler choice, given the normalized
/// channel quality (0–1) of the slice's users.
///
/// Channel-aware schedulers gain more when the channel is mediocre (there is
/// diversity to exploit) and converge to round-robin when the channel is
/// uniformly excellent.
pub fn scheduler_effect(kind: SchedulerKind, channel_quality: f64) -> SchedulerEffect {
    let q = channel_quality.clamp(0.0, 1.0);
    // Diversity gain available to channel-aware schedulers: larger when the
    // channel is mid-range, smaller when it is uniformly good (q -> 1).
    let diversity = 0.25 * (1.0 - q);
    match kind {
        SchedulerKind::RoundRobin => SchedulerEffect {
            throughput_factor: 1.0 - 0.6 * diversity,
            delay_factor: 1.0,
            jitter_factor: 1.0,
        },
        SchedulerKind::ProportionalFair => SchedulerEffect {
            throughput_factor: 1.0,
            delay_factor: 1.0,
            jitter_factor: 1.1,
        },
        SchedulerKind::MaxCqi => SchedulerEffect {
            throughput_factor: 1.0 + diversity,
            delay_factor: 1.05,
            jitter_factor: 1.6,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_cqi_has_highest_throughput_and_worst_jitter() {
        let q = 0.6;
        let rr = scheduler_effect(SchedulerKind::RoundRobin, q);
        let pf = scheduler_effect(SchedulerKind::ProportionalFair, q);
        let mc = scheduler_effect(SchedulerKind::MaxCqi, q);
        assert!(mc.throughput_factor > pf.throughput_factor);
        assert!(pf.throughput_factor > rr.throughput_factor);
        assert!(mc.jitter_factor > rr.jitter_factor);
    }

    #[test]
    fn schedulers_converge_when_the_channel_is_perfect() {
        let rr = scheduler_effect(SchedulerKind::RoundRobin, 1.0);
        let mc = scheduler_effect(SchedulerKind::MaxCqi, 1.0);
        assert!((rr.throughput_factor - 1.0).abs() < 1e-12);
        assert!((mc.throughput_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn factors_are_positive_and_bounded() {
        for kind in [
            SchedulerKind::RoundRobin,
            SchedulerKind::ProportionalFair,
            SchedulerKind::MaxCqi,
        ] {
            for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let e = scheduler_effect(kind, q);
                assert!(e.throughput_factor > 0.5 && e.throughput_factor < 1.5);
                assert!(e.delay_factor >= 1.0 && e.delay_factor < 2.0);
                assert!(e.jitter_factor >= 1.0 && e.jitter_factor < 3.0);
            }
        }
    }

    #[test]
    fn out_of_range_quality_is_clamped() {
        let a = scheduler_effect(SchedulerKind::MaxCqi, -5.0);
        let b = scheduler_effect(SchedulerKind::MaxCqi, 0.0);
        assert_eq!(a, b);
    }
}
