//! Radio access network model (the substrate the RDM virtualizes).
//!
//! The real testbed runs OpenAirInterface eNB/gNB with FlexRAN and assigns
//! RBGs/PRBs exclusively per slice. At the 15-minute orchestration timescale
//! the agent only observes slot aggregates, so this module models the RAN as
//! a capacity/latency/reliability function of
//!
//! * the slice's radio bandwidth share (`U_u` / `U_d`),
//! * its MCS offset (`U_m` / `U_s`) through the customized CQI→MCS table,
//! * its scheduler choice (`U_a` / `U_g`), and
//! * the current average channel quality of its users.

pub mod cqi;
pub mod link;
pub mod scheduler;

pub use cqi::{
    apply_mcs_offset, cqi_to_mcs, spectral_efficiency, RatKind, RatProfile, MAX_CQI, MAX_MCS,
};
pub use link::{
    expected_transmissions, residual_loss_probability, retransmission_probability, ChannelModel,
    Direction,
};
pub use scheduler::{scheduler_effect, SchedulerEffect};

use serde::{Deserialize, Serialize};

use onslicing_slices::SchedulerKind;

/// Per-direction outcome of serving a slice's radio traffic for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioLinkOutcome {
    /// Link capacity allocated to the slice in Mbps (after MCS, scheduler and
    /// HARQ overhead).
    pub capacity_mbps: f64,
    /// Offered load over capacity (may exceed 1 when overloaded).
    pub offered_load: f64,
    /// Fraction of the allocation actually used, in `[0, 1]`.
    pub utilization: f64,
    /// Goodput actually delivered in Mbps.
    pub goodput_mbps: f64,
    /// Average per-request radio delay in milliseconds (transmission +
    /// queueing + scheduling latency).
    pub avg_delay_ms: f64,
    /// First-transmission error probability (before HARQ).
    pub retransmission_prob: f64,
    /// Residual loss probability after HARQ.
    pub residual_loss_prob: f64,
}

/// Configuration of the RAN substrate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RanConfig {
    /// Radio-access technology profile (LTE or NR).
    pub profile: RatProfile,
    /// When set, every transmission uses this MCS instead of the CQI-derived
    /// one (the paper fixes MCS 9 for its 4G-vs-5G comparison, §7.2).
    pub fixed_mcs: Option<u8>,
    /// Maximum HARQ retransmissions per transport block.
    pub max_harq_retransmissions: u32,
    /// Cap on the M/M/1 queueing multiplier so that overload produces large
    /// but finite delays.
    pub max_queue_multiplier: f64,
}

impl RanConfig {
    /// LTE with adaptive MCS — the default configuration for the main
    /// evaluation.
    pub fn lte_default() -> Self {
        Self {
            profile: RatProfile::lte(),
            fixed_mcs: None,
            max_harq_retransmissions: 1,
            max_queue_multiplier: 25.0,
        }
    }

    /// 5G NR with adaptive MCS.
    pub fn nr_default() -> Self {
        Self {
            profile: RatProfile::nr(),
            ..Self::lte_default()
        }
    }

    /// LTE pinned to MCS 9 (the paper's stabilized 4G/5G comparison setting).
    pub fn lte_fixed_mcs9() -> Self {
        Self {
            fixed_mcs: Some(9),
            ..Self::lte_default()
        }
    }

    /// NR pinned to MCS 9.
    pub fn nr_fixed_mcs9() -> Self {
        Self {
            profile: RatProfile::nr(),
            fixed_mcs: Some(9),
            ..Self::lte_default()
        }
    }

    /// The MCS used for a transmission given the current CQI and the slice's
    /// requested offset.
    pub fn effective_mcs(&self, cqi: u8, mcs_offset_steps: u32) -> u8 {
        let standard = self.fixed_mcs.unwrap_or_else(|| cqi_to_mcs(cqi));
        apply_mcs_offset(standard, mcs_offset_steps)
    }

    /// Evaluates one direction of a slice's radio service for one slot.
    ///
    /// * `direction` — uplink or downlink.
    /// * `bandwidth_share` — the slice's share of the carrier in `[0, 1]`
    ///   (`U_u` or `U_d`).
    /// * `mcs_offset_steps` — the decoded MCS offset (0–10).
    /// * `sched` — the slice's scheduler choice for this direction.
    /// * `cqi` — current average CQI of the slice's users.
    /// * `demand_mbps` — offered load in Mbps.
    /// * `request_bits` — size of one application request in bits (used for
    ///   the per-request transmission delay).
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate(
        &self,
        direction: Direction,
        bandwidth_share: f64,
        mcs_offset_steps: u32,
        sched: SchedulerKind,
        cqi: u8,
        demand_mbps: f64,
        request_bits: f64,
    ) -> RadioLinkOutcome {
        let share = bandwidth_share.clamp(0.0, 1.0);
        let mcs = self.effective_mcs(cqi, mcs_offset_steps);
        let channel_quality = f64::from(cqi) / f64::from(MAX_CQI);
        let effect = scheduler_effect(sched, channel_quality);
        let raw_capacity = match direction {
            Direction::Uplink => self.profile.ul_capacity_mbps(mcs),
            Direction::Downlink => self.profile.dl_capacity_mbps(mcs),
        };
        let retx = retransmission_probability(direction, mcs_offset_steps);
        let harq_overhead = expected_transmissions(direction, mcs_offset_steps);
        let capacity = raw_capacity * share * effect.throughput_factor / harq_overhead;

        if capacity <= 1e-9 {
            // No allocation: nothing is served; delay saturates.
            return RadioLinkOutcome {
                capacity_mbps: 0.0,
                offered_load: if demand_mbps > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                },
                utilization: 0.0,
                goodput_mbps: 0.0,
                avg_delay_ms: self.overload_delay_ms(),
                retransmission_prob: retx,
                residual_loss_prob: 1.0,
            };
        }

        let rho = demand_mbps / capacity;
        let served_mbps = demand_mbps.min(capacity);
        let utilization = (served_mbps / capacity).clamp(0.0, 1.0);
        // Per-request transmission time at the allocated rate, inflated by
        // HARQ round trips (8 ms per extra attempt).
        let tx_ms = request_bits / (capacity * 1e6) * 1e3 + (harq_overhead - 1.0) * 8.0;
        let queue_mult = if rho < 1.0 {
            (1.0 / (1.0 - rho)).min(self.max_queue_multiplier)
        } else {
            self.max_queue_multiplier
        };
        let avg_delay_ms = self.profile.base_latency_ms * effect.delay_factor + tx_ms * queue_mult;
        let residual =
            residual_loss_probability(direction, mcs_offset_steps, self.max_harq_retransmissions);
        // When overloaded, the excess traffic is dropped (adds to loss).
        let drop_prob = if rho > 1.0 { 1.0 - 1.0 / rho } else { 0.0 };
        RadioLinkOutcome {
            capacity_mbps: capacity,
            offered_load: rho,
            utilization,
            goodput_mbps: served_mbps * (1.0 - residual),
            avg_delay_ms,
            retransmission_prob: retx,
            residual_loss_prob: (residual + drop_prob).min(1.0),
        }
    }

    /// The delay reported when a link is completely overloaded or
    /// unallocated.
    pub fn overload_delay_ms(&self) -> f64 {
        2_000.0
    }

    /// One-way ping-style latency sample through the RAN (used for the
    /// Fig. 16 ping-delay CDF). Deterministic part only; jitter is added by
    /// the caller from the profile's `latency_jitter_ms`.
    pub fn base_rtt_ms(&self) -> f64 {
        2.0 * self.profile.base_latency_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_ul(cfg: &RanConfig, share: f64, offset: u32, demand: f64) -> RadioLinkOutcome {
        cfg.evaluate(
            Direction::Uplink,
            share,
            offset,
            SchedulerKind::ProportionalFair,
            12,
            demand,
            800_000.0,
        )
    }

    #[test]
    fn more_bandwidth_means_more_capacity_and_less_delay() {
        let cfg = RanConfig::lte_default();
        let small = eval_ul(&cfg, 0.1, 0, 2.0);
        let large = eval_ul(&cfg, 0.5, 0, 2.0);
        assert!(large.capacity_mbps > small.capacity_mbps);
        assert!(large.avg_delay_ms < small.avg_delay_ms);
    }

    #[test]
    fn mcs_offset_trades_capacity_for_reliability() {
        let cfg = RanConfig::lte_default();
        let aggressive = eval_ul(&cfg, 0.3, 0, 1.0);
        let robust = eval_ul(&cfg, 0.3, 6, 1.0);
        assert!(robust.capacity_mbps < aggressive.capacity_mbps);
        assert!(robust.residual_loss_prob < aggressive.residual_loss_prob);
        assert!(robust.retransmission_prob < aggressive.retransmission_prob);
    }

    #[test]
    fn overload_saturates_delay_and_drops_traffic() {
        let cfg = RanConfig::lte_default();
        let out = eval_ul(&cfg, 0.05, 0, 50.0);
        assert!(out.offered_load > 1.0);
        assert!(out.residual_loss_prob > 0.5);
        assert!(out.goodput_mbps < 50.0);
        assert!(out.avg_delay_ms > 100.0);
    }

    #[test]
    fn zero_allocation_serves_nothing() {
        let cfg = RanConfig::lte_default();
        let out = eval_ul(&cfg, 0.0, 0, 1.0);
        assert_eq!(out.capacity_mbps, 0.0);
        assert_eq!(out.goodput_mbps, 0.0);
        assert_eq!(out.residual_loss_prob, 1.0);
    }

    #[test]
    fn fixed_mcs_ignores_cqi() {
        let cfg = RanConfig::lte_fixed_mcs9();
        assert_eq!(cfg.effective_mcs(15, 0), 9);
        assert_eq!(cfg.effective_mcs(3, 0), 9);
        assert_eq!(cfg.effective_mcs(15, 4), 5);
        let adaptive = RanConfig::lte_default();
        assert_eq!(adaptive.effective_mcs(15, 0), 28);
    }

    #[test]
    fn nr_beats_lte_on_latency_and_capacity_at_fixed_mcs() {
        let lte = RanConfig::lte_fixed_mcs9();
        let nr = RanConfig::nr_fixed_mcs9();
        let out_lte = eval_ul(&lte, 0.5, 0, 3.0);
        let out_nr = nr.evaluate(
            Direction::Uplink,
            0.5,
            0,
            SchedulerKind::ProportionalFair,
            12,
            3.0,
            800_000.0,
        );
        assert!(out_nr.capacity_mbps > out_lte.capacity_mbps);
        assert!(nr.base_rtt_ms() < lte.base_rtt_ms());
    }

    #[test]
    fn downlink_has_more_capacity_than_uplink() {
        let cfg = RanConfig::lte_default();
        let ul = cfg.evaluate(
            Direction::Uplink,
            0.4,
            0,
            SchedulerKind::RoundRobin,
            12,
            1.0,
            1e5,
        );
        let dl = cfg.evaluate(
            Direction::Downlink,
            0.4,
            0,
            SchedulerKind::RoundRobin,
            12,
            1.0,
            1e5,
        );
        assert!(dl.capacity_mbps > ul.capacity_mbps);
    }

    #[test]
    fn utilization_is_demand_over_capacity_when_underloaded() {
        let cfg = RanConfig::lte_default();
        let out = eval_ul(&cfg, 0.8, 0, 1.0);
        assert!(out.offered_load < 1.0);
        assert!((out.utilization - out.offered_load).abs() < 1e-9);
    }
}
