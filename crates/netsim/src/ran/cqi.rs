//! CQI ↔ MCS mapping and spectral efficiency.
//!
//! The RDM introduces a per-slice customized CQI→MCS mapping table (§6): a
//! slice may request an *MCS offset* so that, e.g., CQI 15 maps to 16-QAM
//! instead of 64-QAM, trading link capacity for robustness. This module
//! provides the standardized mapping (3GPP-style, simplified to the 4-bit CQI
//! table and 0–28 MCS range) and the per-MCS spectral efficiency used to turn
//! PRB allocations into link capacity.

use serde::{Deserialize, Serialize};

/// Highest CQI index (3GPP 4-bit CQI).
pub const MAX_CQI: u8 = 15;

/// Highest MCS index used by the simulator (0–28, LTE-style).
pub const MAX_MCS: u8 = 28;

/// Maps a CQI index (0–15) to the standardized MCS index (0–28).
///
/// The mapping is the usual near-linear one: CQI 0 is out-of-range (MCS 0),
/// CQI 15 maps to the highest MCS.
pub fn cqi_to_mcs(cqi: u8) -> u8 {
    let cqi = cqi.min(MAX_CQI);
    // Piecewise-linear lookup approximating the standard table.
    const TABLE: [u8; 16] = [0, 1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 28];
    TABLE[cqi as usize]
}

/// Spectral efficiency (bits per second per Hz) delivered at the given MCS.
///
/// Follows the standard modulation/coding progression: QPSK below MCS 10,
/// 16-QAM up to MCS 16, 64-QAM above, saturating near 5.55 b/s/Hz at MCS 28.
/// Values follow the LTE CQI efficiency table interpolated over the 0–28 MCS
/// range.
pub fn spectral_efficiency(mcs: u8) -> f64 {
    const TABLE: [f64; 29] = [
        0.15, 0.19, 0.23, 0.31, 0.38, 0.49, 0.60, 0.74, 0.88, 1.03, // QPSK
        1.18, 1.33, 1.48, 1.70, 1.91, 2.16, 2.41, // 16-QAM
        2.57, 2.73, 3.03, 3.32, 3.61, 3.90, 4.21, 4.52, 4.82, 5.12, 5.33, 5.55, // 64-QAM
    ];
    TABLE[mcs.min(MAX_MCS) as usize]
}

/// The effective MCS after applying a slice's requested offset
/// (`used = standard − offset`, floored at 0).
pub fn apply_mcs_offset(standard_mcs: u8, offset: u32) -> u8 {
    standard_mcs.saturating_sub(offset.min(u32::from(MAX_MCS)) as u8)
}

/// Radio-access technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RatKind {
    /// 4G LTE (the testbed's eNB).
    Lte,
    /// 5G NR non-standalone (the testbed's gNB).
    Nr,
}

impl RatKind {
    /// Human-readable name ("4G LTE" / "5G NR").
    pub fn name(self) -> &'static str {
        match self {
            RatKind::Lte => "4G LTE",
            RatKind::Nr => "5G NR",
        }
    }
}

/// Radio-access technology profile (4G LTE eNB or 5G NR gNB).
///
/// The numbers reflect the paper's testbed: the eNB runs at 2.6 GHz with a
/// 20 MHz carrier (100 PRBs), the gNB at 3.5 GHz with 40 MHz (106 PRBs,
/// 30 kHz subcarrier spacing); 5G NR also roughly halves the RAN round-trip
/// latency (Fig. 16: 11.99 ms vs 27.99 ms average ping).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatProfile {
    /// Which generation this profile describes.
    pub kind: RatKind,
    /// Number of downlink PRBs in the carrier.
    pub dl_prbs: u32,
    /// Number of uplink PRBs in the carrier.
    pub ul_prbs: u32,
    /// PRB bandwidth in kHz (180 for LTE's 15 kHz SCS, 360 for NR's 30 kHz).
    pub prb_khz: f64,
    /// Fraction of the downlink airtime usable for user data (TDD pattern,
    /// control overhead, implementation efficiency).
    pub dl_efficiency: f64,
    /// Fraction of the uplink airtime usable for user data.
    pub ul_efficiency: f64,
    /// Base one-way RAN latency in milliseconds (scheduling + processing).
    pub base_latency_ms: f64,
    /// Standard deviation of the RAN latency jitter in milliseconds.
    pub latency_jitter_ms: f64,
}

impl RatProfile {
    /// The testbed's 4G LTE eNB (20 MHz, 100 PRBs).
    ///
    /// The efficiency factors are calibrated so that the fixed-MCS-9 carrier
    /// capacities land near the paper's iperf3 measurements (14.3 Mbps DL,
    /// 6.71 Mbps UL; §7.2 "Performance in 5G").
    pub fn lte() -> Self {
        Self {
            kind: RatKind::Lte,
            dl_prbs: 100,
            ul_prbs: 100,
            prb_khz: 180.0,
            dl_efficiency: 0.77,
            ul_efficiency: 0.36,
            base_latency_ms: 13.0,
            latency_jitter_ms: 4.0,
        }
    }

    /// The testbed's 5G NR gNB (40 MHz, 106 PRBs, 30 kHz SCS, TDD
    /// 5 DL / 4 UL slots).
    ///
    /// Calibrated against the paper's fixed-MCS-9 measurements (18.5 Mbps DL,
    /// 11.5 Mbps UL).
    pub fn nr() -> Self {
        Self {
            kind: RatKind::Nr,
            dl_prbs: 106,
            ul_prbs: 106,
            prb_khz: 360.0,
            dl_efficiency: 0.47,
            ul_efficiency: 0.29,
            base_latency_ms: 5.0,
            latency_jitter_ms: 1.5,
        }
    }

    /// Human-readable name of the profile.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Total downlink capacity in Mbps when every PRB runs at the given MCS.
    pub fn dl_capacity_mbps(&self, mcs: u8) -> f64 {
        self.dl_prbs as f64 * self.prb_khz * 1e3 * spectral_efficiency(mcs) * self.dl_efficiency
            / 1e6
    }

    /// Total uplink capacity in Mbps when every PRB runs at the given MCS.
    pub fn ul_capacity_mbps(&self, mcs: u8) -> f64 {
        self.ul_prbs as f64 * self.prb_khz * 1e3 * spectral_efficiency(mcs) * self.ul_efficiency
            / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cqi_to_mcs_is_monotone_and_bounded() {
        let mut prev = 0;
        for cqi in 0..=MAX_CQI {
            let mcs = cqi_to_mcs(cqi);
            assert!(mcs >= prev, "mapping must be monotone");
            assert!(mcs <= MAX_MCS);
            prev = mcs;
        }
        assert_eq!(cqi_to_mcs(15), MAX_MCS);
        assert_eq!(cqi_to_mcs(200), MAX_MCS, "out-of-range CQIs saturate");
    }

    #[test]
    fn spectral_efficiency_is_monotone_and_saturates() {
        let mut prev = 0.0;
        for mcs in 0..=MAX_MCS {
            let se = spectral_efficiency(mcs);
            assert!(se >= prev);
            prev = se;
        }
        assert!((spectral_efficiency(MAX_MCS) - 5.55).abs() < 0.2);
        assert!(spectral_efficiency(0) < 0.3);
        // QPSK 2/3 at MCS 9 should be below 1.3 b/s/Hz.
        assert!(spectral_efficiency(9) < 1.3);
    }

    #[test]
    fn mcs_offset_is_applied_and_floored() {
        assert_eq!(apply_mcs_offset(20, 6), 14);
        assert_eq!(apply_mcs_offset(3, 10), 0);
        assert_eq!(apply_mcs_offset(28, 0), 28);
    }

    #[test]
    fn lte_fixed_mcs9_capacity_is_near_the_papers_measurement() {
        // Paper §7.2: with fixed MCS 9, 4G LTE measured 14.3 Mbps DL and
        // 6.71 Mbps UL. The simulator should land in the same ballpark.
        let lte = RatProfile::lte();
        let dl = lte.dl_capacity_mbps(9);
        let ul = lte.ul_capacity_mbps(9);
        assert!(
            (dl - 14.3).abs() / 14.3 < 0.3,
            "LTE DL {dl} Mbps should be near 14.3"
        );
        assert!(
            (ul - 6.71).abs() / 6.71 < 0.3,
            "LTE UL {ul} Mbps should be near 6.71"
        );
    }

    #[test]
    fn nr_fixed_mcs9_capacity_is_near_the_papers_measurement() {
        // Paper §7.2: 5G NR measured 18.5 Mbps DL and 11.5 Mbps UL at MCS 9.
        let nr = RatProfile::nr();
        let dl = nr.dl_capacity_mbps(9);
        let ul = nr.ul_capacity_mbps(9);
        assert!(
            (dl - 18.5).abs() / 18.5 < 0.3,
            "NR DL {dl} Mbps should be near 18.5"
        );
        assert!(
            (ul - 11.5).abs() / 11.5 < 0.3,
            "NR UL {ul} Mbps should be near 11.5"
        );
    }

    #[test]
    fn nr_has_lower_base_latency_than_lte() {
        assert!(RatProfile::nr().base_latency_ms < RatProfile::lte().base_latency_ms);
    }

    #[test]
    fn adaptive_mcs_capacity_exceeds_fixed_mcs9() {
        let lte = RatProfile::lte();
        assert!(lte.dl_capacity_mbps(cqi_to_mcs(14)) > 2.0 * lte.dl_capacity_mbps(9));
    }
}
