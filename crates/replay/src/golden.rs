//! Golden-trace comparison: diff a freshly recorded [`TelemetryTrace`]
//! against a committed reference within numeric tolerances.
//!
//! The committed goldens live in `goldens/TRACE_<scenario>.json` at the
//! repository root. `replay_check golden <scenario>` re-runs the scenario
//! from its pinned seed and fails CI on any drift; `--update` regenerates
//! the files after an *intentional* behavior change (see the README).

use std::path::{Path, PathBuf};

use crate::telemetry::TelemetryTrace;

/// Numeric tolerance for float comparisons: values `a`, `b` match when
/// `|a - b| <= abs + rel * max(|a|, |b|)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative component.
    pub rel: f64,
    /// Absolute component.
    pub abs: f64,
}

impl Default for Tolerance {
    /// Tight enough to catch any algorithmic drift, loose enough to absorb
    /// a differently-ordered (but mathematically equivalent) float reduction
    /// should one ever be introduced.
    fn default() -> Self {
        Self {
            rel: 1e-9,
            abs: 1e-12,
        }
    }
}

impl Tolerance {
    /// Bitwise equality — the contract for checkpoint-resume suffixes.
    pub fn exact() -> Self {
        Self { rel: 0.0, abs: 0.0 }
    }

    /// Whether two floats match under this tolerance.
    pub fn matches(&self, a: f64, b: f64) -> bool {
        if a == b {
            return true; // covers ±inf and exact zeros
        }
        (a - b).abs() <= self.abs + self.rel * a.abs().max(b.abs())
    }
}

fn check_float(drifts: &mut Vec<String>, tol: Tolerance, name: &str, a: f64, b: f64) {
    if !tol.matches(a, b) {
        drifts.push(format!("{name}: expected {a:?}, got {b:?}"));
    }
}

/// Compares two traces field by field and returns a human-readable list of
/// drifts (empty = the traces match).
pub fn diff_traces(
    expected: &TelemetryTrace,
    actual: &TelemetryTrace,
    tol: Tolerance,
) -> Vec<String> {
    let mut drifts = Vec::new();
    let check =
        |drifts: &mut Vec<String>, name: &str, a: f64, b: f64| check_float(drifts, tol, name, a, b);
    if expected.scenario != actual.scenario {
        drifts.push(format!(
            "scenario: expected `{}`, got `{}`",
            expected.scenario, actual.scenario
        ));
    }
    if expected.seed != actual.seed {
        drifts.push(format!(
            "seed: expected {}, got {}",
            expected.seed, actual.seed
        ));
    }
    if expected.start_slot != actual.start_slot {
        drifts.push(format!(
            "start_slot: expected {}, got {}",
            expected.start_slot, actual.start_slot
        ));
    }
    if expected.total_slots != actual.total_slots {
        drifts.push(format!(
            "total_slots: expected {}, got {}",
            expected.total_slots, actual.total_slots
        ));
    }
    if expected.slots.len() != actual.slots.len() {
        drifts.push(format!(
            "slot records: expected {}, got {}",
            expected.slots.len(),
            actual.slots.len()
        ));
    }
    for (e, a) in expected.slots.iter().zip(&actual.slots) {
        if e.slot != a.slot || e.slices.len() != a.slices.len() {
            drifts.push(format!(
                "slot {}: expected {} slices, got slot {} with {}",
                e.slot,
                e.slices.len(),
                a.slot,
                a.slices.len()
            ));
            continue;
        }
        for (es, as_) in e.slices.iter().zip(&a.slices) {
            let tag = format!("slot {} slice {}", e.slot, es.id);
            if es.id != as_.id || es.kind != as_.kind || es.used_baseline != as_.used_baseline {
                drifts.push(format!(
                    "{tag}: identity/switch drift (expected {:?}/{}/{}, got {:?}/{}/{})",
                    es.kind, es.id, es.used_baseline, as_.kind, as_.id, as_.used_baseline
                ));
                continue;
            }
            check(&mut drifts, &format!("{tag} cost"), es.cost, as_.cost);
            check(&mut drifts, &format!("{tag} reward"), es.reward, as_.reward);
            check(
                &mut drifts,
                &format!("{tag} usage_percent"),
                es.usage_percent,
                as_.usage_percent,
            );
            check(
                &mut drifts,
                &format!("{tag} performance_score"),
                es.performance_score,
                as_.performance_score,
            );
            check(&mut drifts, &format!("{tag} lambda"), es.lambda, as_.lambda);
        }
    }
    if expected.episodes.len() != actual.episodes.len() {
        drifts.push(format!(
            "episodes: expected {}, got {}",
            expected.episodes.len(),
            actual.episodes.len()
        ));
    }
    for (e, a) in expected.episodes.iter().zip(&actual.episodes) {
        let tag = format!("episode@{} slice {}", e.slot, e.slice);
        if e.slot != a.slot
            || e.slice != a.slice
            || e.kind != a.kind
            || e.violated != a.violated
            || e.switched_to_baseline != a.switched_to_baseline
        {
            drifts.push(format!("{tag}: identity/outcome drift"));
            continue;
        }
        check(
            &mut drifts,
            &format!("{tag} avg_cost"),
            e.avg_cost,
            a.avg_cost,
        );
        check(
            &mut drifts,
            &format!("{tag} avg_usage_percent"),
            e.avg_usage_percent,
            a.avg_usage_percent,
        );
    }
    if expected.summaries.len() != actual.summaries.len() {
        drifts.push(format!(
            "summaries: expected {}, got {}",
            expected.summaries.len(),
            actual.summaries.len()
        ));
    }
    for (e, a) in expected.summaries.iter().zip(&actual.summaries) {
        let tag = format!("summary slice {}", e.id);
        if e.id != a.id
            || e.kind != a.kind
            || e.slots != a.slots
            || e.episodes != a.episodes
            || e.violations != a.violations
            || e.switched_episodes != a.switched_episodes
            || e.baseline_slots != a.baseline_slots
        {
            drifts.push(format!("{tag}: count drift"));
            continue;
        }
        check(
            &mut drifts,
            &format!("{tag} mean_reward"),
            e.mean_reward,
            a.mean_reward,
        );
        check(
            &mut drifts,
            &format!("{tag} cost_p50"),
            e.cost_p50,
            a.cost_p50,
        );
        check(
            &mut drifts,
            &format!("{tag} cost_p90"),
            e.cost_p90,
            a.cost_p90,
        );
        check(
            &mut drifts,
            &format!("{tag} cost_p99"),
            e.cost_p99,
            a.cost_p99,
        );
        check(
            &mut drifts,
            &format!("{tag} usage_p50"),
            e.usage_p50,
            a.usage_p50,
        );
        check(
            &mut drifts,
            &format!("{tag} usage_p90"),
            e.usage_p90,
            a.usage_p90,
        );
        check(
            &mut drifts,
            &format!("{tag} usage_p99"),
            e.usage_p99,
            a.usage_p99,
        );
        check(
            &mut drifts,
            &format!("{tag} final_lambda"),
            e.final_lambda,
            a.final_lambda,
        );
    }
    drifts
}

/// The golden file path for a scenario: `<dir>/TRACE_<scenario>.json`.
pub fn golden_path(dir: &Path, scenario: &str) -> PathBuf {
    dir.join(format!("TRACE_{scenario}.json"))
}

/// Diffs a freshly recorded trace against the committed golden.
///
/// Returns the drift list (empty = pass); a missing or unreadable golden is
/// reported as a single drift entry so CI fails with a clear message.
pub fn check_against_golden(
    trace: &TelemetryTrace,
    dir: &Path,
    tol: Tolerance,
) -> Result<(), Vec<String>> {
    let path = golden_path(dir, &trace.scenario);
    let golden = match TelemetryTrace::load(&path) {
        Ok(golden) => golden,
        Err(e) => {
            return Err(vec![format!(
                "{e} — run `replay_check golden {} --update` to create it",
                trace.scenario
            )])
        }
    };
    let drifts = diff_traces(&golden, trace, tol);
    if drifts.is_empty() {
        Ok(())
    } else {
        Err(drifts)
    }
}

/// Writes (or overwrites) the golden for a trace and returns its path.
pub fn write_golden(trace: &TelemetryTrace, dir: &Path) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create golden dir {}: {e}", dir.display()))?;
    let path = golden_path(dir, &trace.scenario);
    trace.save(&path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::record_scenario;
    use onslicing_scenario::{builtin, ScenarioConfig};

    #[test]
    fn tolerance_matches_within_and_rejects_beyond() {
        let tol = Tolerance::default();
        assert!(tol.matches(1.0, 1.0 + 1e-12));
        assert!(!tol.matches(1.0, 1.0 + 1e-6));
        assert!(Tolerance::exact().matches(0.25, 0.25));
        assert!(!Tolerance::exact().matches(0.25, 0.25 + f64::EPSILON));
        assert!(tol.matches(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn identical_traces_have_no_drift() {
        let (trace, _) = record_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
        assert!(diff_traces(&trace, &trace, Tolerance::exact()).is_empty());
    }

    #[test]
    fn perturbations_are_reported_with_location() {
        let (trace, _) = record_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
        let mut bad = trace.clone();
        bad.slots[3].slices[1].cost += 0.5;
        bad.summaries[0].violations += 1;
        let drifts = diff_traces(&trace, &bad, Tolerance::default());
        assert_eq!(drifts.len(), 2, "{drifts:?}");
        assert!(drifts[0].contains("slot 3 slice 1 cost"), "{}", drifts[0]);
        assert!(drifts[1].contains("summary slice 0"), "{}", drifts[1]);
    }

    #[test]
    fn golden_round_trip_through_disk() {
        let dir = std::env::temp_dir().join("onslicing-golden-test");
        let (trace, _) = record_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
        let path = write_golden(&trace, &dir).unwrap();
        assert_eq!(path, golden_path(&dir, "steady"));
        check_against_golden(&trace, &dir, Tolerance::exact()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_golden_is_a_clear_failure() {
        let (trace, _) = record_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
        let err = check_against_golden(&trace, Path::new("/no/such/dir"), Tolerance::default())
            .unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("--update"), "{}", err[0]);
    }
}
