//! The golden-trace regression harness and checkpoint/replay verifier.
//!
//! ```sh
//! # Gate: re-run built-ins from their pinned seed and diff against the
//! # committed goldens (non-zero exit on any drift):
//! cargo run --release --bin replay_check -- golden steady flash-crowd
//! # Regenerate goldens after an intentional behavior change:
//! cargo run --release --bin replay_check -- golden steady flash-crowd --update
//! # Record a trace without comparing:
//! cargo run --release --bin replay_check -- trace stress-many-slices --out TRACE.json
//! # Checkpoint a run mid-scenario (also records the full reference trace):
//! cargo run --release --bin replay_check -- checkpoint steady --at-slot 24 \
//!     --out ck.json --trace-out full.json
//! # Resume the checkpoint in a fresh process; the remaining slots must
//! # reproduce the reference trace's suffix EXACTLY (bit-for-bit):
//! cargo run --release --bin replay_check -- resume --from ck.json --expect full.json
//! ```
//!
//! Scenario arguments are built-in names (`replay_check list` prints them)
//! or paths to scenario JSON files. Exit codes: 0 = pass, 1 = drift or
//! resume mismatch, 2 = usage/setup error.

use std::path::PathBuf;
use std::process::ExitCode;

use onslicing_replay::{
    check_against_golden, diff_traces, write_golden, Checkpoint, TelemetryRecorder, TelemetryTrace,
    Tolerance,
};
use onslicing_scenario::{builtin, AdmissionPolicyName, Scenario, ScenarioConfig, ScenarioEngine};

/// Default directory of the committed goldens, relative to the working
/// directory (the repository root in CI).
const DEFAULT_GOLDEN_DIR: &str = "goldens";

fn usage() -> String {
    "usage: replay_check <command> [options]\n\
     commands:\n\
       list                                   print the built-in scenario names\n\
       trace <scenario> [--seed N] [--out PATH]\n\
       golden <scenario>... [--goldens DIR] [--seed N] [--update] [--rel X] [--abs Y]\n\
       checkpoint <scenario> --at-slot T [--seed N] [--out CK] [--trace-out TRACE]\n\
       resume --from CK [--expect TRACE] [--out PATH] [--policy NAME]\n\
     scenarios are built-in names or paths to scenario JSON files"
        .to_string()
}

fn load_scenario(name: &str) -> Result<Scenario, String> {
    builtin::by_name_or_file(name)
}

fn record(name: &str, seed: u64) -> Result<TelemetryTrace, String> {
    let scenario = load_scenario(name)?;
    let mut engine = ScenarioEngine::new(
        scenario,
        ScenarioConfig {
            seed,
            ..ScenarioConfig::default()
        },
    )?;
    let mut recorder = TelemetryRecorder::new(&engine);
    let report = engine.run_with_observer(&mut recorder);
    if report.has_non_finite() {
        return Err(format!("scenario `{name}` produced non-finite metrics"));
    }
    Ok(recorder.finalize())
}

struct Options {
    positional: Vec<String>,
    seed: u64,
    out: Option<String>,
    goldens: PathBuf,
    update: bool,
    rel: f64,
    abs: f64,
    at_slot: Option<usize>,
    trace_out: Option<String>,
    from: Option<String>,
    expect: Option<String>,
    policy: Option<AdmissionPolicyName>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        positional: Vec::new(),
        seed: 0,
        out: None,
        goldens: PathBuf::from(DEFAULT_GOLDEN_DIR),
        update: false,
        rel: Tolerance::default().rel,
        abs: Tolerance::default().abs,
        at_slot: None,
        trace_out: None,
        from: None,
        expect: None,
        policy: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
            }
            "--out" => opts.out = Some(value("--out")?),
            "--goldens" => opts.goldens = PathBuf::from(value("--goldens")?),
            "--update" => opts.update = true,
            "--rel" => {
                let v = value("--rel")?;
                opts.rel = v.parse().map_err(|_| format!("invalid --rel `{v}`"))?;
            }
            "--abs" => {
                let v = value("--abs")?;
                opts.abs = v.parse().map_err(|_| format!("invalid --abs `{v}`"))?;
            }
            "--at-slot" => {
                let v = value("--at-slot")?;
                opts.at_slot = Some(v.parse().map_err(|_| format!("invalid --at-slot `{v}`"))?);
            }
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--from" => opts.from = Some(value("--from")?),
            "--expect" => opts.expect = Some(value("--expect")?),
            "--policy" => opts.policy = Some(AdmissionPolicyName::parse(&value("--policy")?)?),
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            name => opts.positional.push(name.to_string()),
        }
    }
    Ok(opts)
}

fn cmd_trace(opts: &Options) -> Result<(), String> {
    let [name] = opts.positional.as_slice() else {
        return Err("trace takes exactly one scenario".to_string());
    };
    let trace = record(name, opts.seed)?;
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("TRACE_{}.json", trace.scenario));
    trace.save(&out)?;
    println!(
        "recorded `{name}` (seed {}): {} slots, {} episodes -> {out}",
        opts.seed,
        trace.slots.len(),
        trace.episodes.len()
    );
    Ok(())
}

fn cmd_golden(opts: &Options) -> Result<bool, String> {
    if opts.positional.is_empty() {
        return Err("golden needs at least one scenario".to_string());
    }
    let tol = Tolerance {
        rel: opts.rel,
        abs: opts.abs,
    };
    let mut all_pass = true;
    for name in &opts.positional {
        let trace = record(name, opts.seed)?;
        if opts.update {
            let path = write_golden(&trace, &opts.goldens)?;
            println!("golden updated: {}", path.display());
            continue;
        }
        match check_against_golden(&trace, &opts.goldens, tol) {
            Ok(()) => println!(
                "golden ok: `{}` ({} slots, {} episodes)",
                trace.scenario,
                trace.slots.len(),
                trace.episodes.len()
            ),
            Err(drifts) => {
                all_pass = false;
                eprintln!(
                    "golden DRIFT: `{}` — {} difference(s):",
                    trace.scenario,
                    drifts.len()
                );
                for drift in drifts.iter().take(20) {
                    eprintln!("  {drift}");
                }
                if drifts.len() > 20 {
                    eprintln!("  ... and {} more", drifts.len() - 20);
                }
            }
        }
    }
    Ok(all_pass)
}

fn cmd_checkpoint(opts: &Options) -> Result<(), String> {
    let [name] = opts.positional.as_slice() else {
        return Err("checkpoint takes exactly one scenario".to_string());
    };
    let at_slot = opts.at_slot.ok_or("checkpoint needs --at-slot")?;
    let scenario = load_scenario(name)?;
    if at_slot == 0 || at_slot >= scenario.total_slots {
        return Err(format!(
            "--at-slot must be inside the scenario (1..{})",
            scenario.total_slots
        ));
    }
    let mut engine = ScenarioEngine::new(
        scenario,
        ScenarioConfig {
            seed: opts.seed,
            ..ScenarioConfig::default()
        },
    )?;
    let mut recorder = TelemetryRecorder::new(&engine);
    engine.run_until(at_slot, &mut recorder);
    let checkpoint = Checkpoint::capture(&engine);
    let ck_out = opts.out.clone().unwrap_or_else(|| "checkpoint.json".into());
    checkpoint.save(&ck_out)?;
    // Keep running the same engine so the emitted trace is the full
    // uninterrupted reference the resumed process is compared against.
    let report = engine.run_with_observer(&mut recorder);
    if report.has_non_finite() {
        return Err(format!("scenario `{name}` produced non-finite metrics"));
    }
    let trace = recorder.finalize();
    let trace_out = opts
        .trace_out
        .clone()
        .unwrap_or_else(|| format!("TRACE_{}.json", trace.scenario));
    trace.save(&trace_out)?;
    println!(
        "checkpointed `{name}` at slot {at_slot}/{} -> {ck_out}; reference trace -> {trace_out}",
        trace.total_slots
    );
    Ok(())
}

fn cmd_resume(opts: &Options) -> Result<bool, String> {
    let from = opts.from.as_deref().ok_or("resume needs --from")?;
    let checkpoint = Checkpoint::load(from)?;
    let start = checkpoint.slot;
    // With --policy the resume is pinned to a named admission policy: a
    // checkpoint captured under any other one is refused, not spliced.
    let mut engine = match opts.policy {
        Some(expected) => checkpoint.restore_expecting(expected)?,
        None => checkpoint.restore(),
    };
    let mut recorder = TelemetryRecorder::new(&engine);
    let report = engine.run_with_observer(&mut recorder);
    if report.has_non_finite() {
        return Err("resumed run produced non-finite metrics".to_string());
    }
    let resumed = recorder.finalize();
    if let Some(out) = &opts.out {
        resumed.save(out)?;
    }
    let Some(expect) = opts.expect.as_deref() else {
        println!(
            "resumed `{}` from slot {start}: {} slots, {} episodes (no --expect given)",
            resumed.scenario,
            resumed.slots.len(),
            resumed.episodes.len()
        );
        return Ok(true);
    };
    let reference = TelemetryTrace::load(expect)?;
    let (expected_slots, expected_episodes) = reference.suffix_from(start);
    // The replay contract is bit-for-bit: compare the serialized records.
    let slots_match =
        serde_json::to_string(&resumed.slots) == serde_json::to_string(&expected_slots);
    let episodes_match =
        serde_json::to_string(&resumed.episodes) == serde_json::to_string(&expected_episodes);
    if slots_match && episodes_match {
        println!(
            "resume ok: `{}` slots {start}..{} reproduced bit-for-bit ({} slot records, {} episodes)",
            resumed.scenario,
            resumed.total_slots,
            resumed.slots.len(),
            resumed.episodes.len()
        );
        Ok(true)
    } else {
        let mut fake_expected = reference.clone();
        fake_expected.slots = expected_slots;
        fake_expected.episodes = expected_episodes;
        fake_expected.start_slot = start;
        fake_expected.summaries = Vec::new();
        let mut resumed_cmp = resumed.clone();
        resumed_cmp.summaries = Vec::new();
        eprintln!("resume MISMATCH: replay diverged from the reference run:");
        for drift in diff_traces(&fake_expected, &resumed_cmp, Tolerance::exact())
            .iter()
            .take(20)
        {
            eprintln!("  {drift}");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let opts = match parse_options(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("replay_check: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let outcome = match command.as_str() {
        "list" => {
            for name in builtin::BUILTIN_NAMES {
                println!("{name}");
            }
            Ok(true)
        }
        "trace" => cmd_trace(&opts).map(|()| true),
        "golden" => cmd_golden(&opts),
        "checkpoint" => cmd_checkpoint(&opts).map(|()| true),
        "resume" => cmd_resume(&opts),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("replay_check: {e}");
            ExitCode::from(2)
        }
    }
}
