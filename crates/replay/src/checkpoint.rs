//! Full-state scenario checkpoints.
//!
//! A [`Checkpoint`] wraps a [`ScenarioEngine`] serialized *between slots*
//! with enough metadata to sanity-check a restore. Everything dynamic is
//! inside the engine's own serialization: MLP/Gaussian/Bayesian weights and
//! Adam moments, PPO/BC/cost-estimator/Lagrangian state, rollout buffers,
//! per-slice environment + traffic-trace cursors and RNG streams, domain
//! capacities/overrides, orchestrator slice membership and the run-loop
//! cursor (pending event index, transient restores, report accumulators).
//!
//! The restore contract is exact: a checkpoint taken after slot `t` and
//! restored into a fresh process produces byte-identical telemetry for
//! slots `t..total_slots` (verified by `replay_check resume` in CI and the
//! property tests in `tests/checkpoint_replay.rs`).

use std::path::Path;

use serde::{Deserialize, Serialize};

use onslicing_core::SliceCheckpoint;
use onslicing_domains::SliceId;
use onslicing_scenario::{AdmissionPolicyName, ScenarioEngine};

use crate::fsio::atomic_write;

/// Reads the `format_version` stamp out of a snapshot document *before*
/// attempting the full deserialization, so a file written by an older (or
/// newer) layout fails with a clear "version X is not supported" error
/// instead of whatever missing-field noise the structural parse would hit
/// first. Public so other versioned snapshot formats (the fleet checkpoint,
/// for one) apply the same gate.
pub fn peek_format_version(text: &str, what: &str, expected: u32) -> Result<(), String> {
    let value: serde::Value =
        serde_json::from_str(text).map_err(|e| format!("malformed {what}: {e}"))?;
    let version = value
        .get("format_version")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("malformed {what}: missing format_version stamp"))?;
    if version != u64::from(expected) {
        return Err(format!(
            "{what} format version {version} is not supported (expected {expected})"
        ));
    }
    Ok(())
}

/// Version stamp of the checkpoint JSON layout; bump on breaking changes so
/// stale files fail loudly instead of mis-restoring.
///
/// v2: the engine's `RunState` gained the `slot_cost_total` /
/// `slot_usage_weighted` accumulators and `ScenarioReport` the
/// `avg_slot_cost` / `avg_slot_usage_percent` fields, so v1 snapshots no
/// longer parse.
///
/// v3: the engine serializes its pending-admission reservation counter
/// (`unenforced_admissions`) — the elastic fleet admits and migrates
/// between slots, and a checkpoint taken at such a boundary must not drop
/// the capacity pledges — so v2 snapshots no longer parse.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 3;

/// A versioned, self-describing snapshot of a scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Layout version ([`CHECKPOINT_FORMAT_VERSION`] at capture time).
    pub format_version: u32,
    /// Name of the scenario being executed.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Next slot the restored engine will execute.
    pub slot: usize,
    /// Scheduled scenario length in slots.
    pub total_slots: usize,
    /// The complete serialized deployment.
    engine: ScenarioEngine,
}

impl Checkpoint {
    /// Captures the engine's current state (call between slots — i.e. not
    /// from inside an observer callback).
    pub fn capture(engine: &ScenarioEngine) -> Self {
        Self {
            format_version: CHECKPOINT_FORMAT_VERSION,
            scenario: engine.scenario().name.clone(),
            seed: engine.config().seed,
            slot: engine.current_slot(),
            total_slots: engine.scenario().total_slots,
            engine: engine.clone(),
        }
    }

    /// Consumes the checkpoint and returns the engine, ready to execute the
    /// remaining slots.
    pub fn restore(self) -> ScenarioEngine {
        self.engine
    }

    /// The admission policy the checkpointed run was using (carried inside
    /// the serialized engine's configuration).
    pub fn admission_policy(&self) -> AdmissionPolicyName {
        self.engine.config().admission.policy
    }

    /// Like [`Checkpoint::restore`], but first verifies the run was using
    /// `expected` — resuming under a different admission policy would
    /// splice two different deterministic histories into one trace, so the
    /// mismatch is refused loudly instead.
    pub fn restore_expecting(
        self,
        expected: AdmissionPolicyName,
    ) -> Result<ScenarioEngine, String> {
        let actual = self.admission_policy();
        if actual != expected {
            return Err(format!(
                "checkpoint was captured under admission policy `{actual}`, \
                 resume requested `{expected}`"
            ));
        }
        Ok(self.engine)
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization cannot fail")
    }

    /// Parses a checkpoint, rejecting unknown layout versions. The version
    /// stamp is peeked before the structural parse, so a v2 file produces
    /// "format version 2 is not supported", not a missing-field error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        peek_format_version(text, "checkpoint", CHECKPOINT_FORMAT_VERSION)?;
        let checkpoint: Checkpoint =
            serde_json::from_str(text).map_err(|e| format!("malformed checkpoint: {e}"))?;
        Ok(checkpoint)
    }

    /// Writes the checkpoint to a file crash-safely (temp file + fsync +
    /// atomic rename): a crash mid-save never leaves a torn file where the
    /// previous checkpoint was.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        atomic_write(path.as_ref(), &self.to_json())
            .map_err(|e| format!("cannot write checkpoint: {e}"))
    }

    /// Reads and validates a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.as_ref().display()))?;
        Self::from_json(&text)
    }
}

/// Version stamp of the per-slice snapshot JSON layout; bump on breaking
/// changes to the agent/environment serialization.
pub const SLICE_SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// A versioned snapshot of **one** slice's complete state, extracted from a
/// live engine without disturbing it — the file-format twin of the
/// in-memory [`SliceCheckpoint`] the fleet balancer migrates.
///
/// Where [`Checkpoint`] snapshots a whole deployment, a `SliceSnapshot`
/// carries a single slice (agent weights/optimizer/RNG, environment
/// simulator/trace cursors, mid-episode position included), small enough to
/// ship between processes or archive per migration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceSnapshot {
    /// Layout version ([`SLICE_SNAPSHOT_FORMAT_VERSION`] at capture time).
    pub format_version: u32,
    /// Name of the scenario the slice was running in.
    pub scenario: String,
    /// Master seed of the source run.
    pub seed: u64,
    /// Next slot the source engine would execute at capture time.
    pub slot: usize,
    /// The slice's id in the source engine.
    pub slice: u32,
    /// The detached slice state.
    state: SliceCheckpoint,
}

impl SliceSnapshot {
    /// Extracts slice `slice`'s state from a live engine, non-destructively
    /// (the engine keeps running the slice; the snapshot is a deep copy).
    pub fn extract(engine: &ScenarioEngine, slice: u32) -> Result<Self, String> {
        let orch = engine.orchestrator();
        let index = orch
            .index_of(SliceId(slice))
            .ok_or_else(|| format!("slice {slice} is not active in this engine"))?;
        let agent = orch.agents()[index].clone();
        let env = orch.env().envs()[index].clone();
        Ok(Self {
            format_version: SLICE_SNAPSHOT_FORMAT_VERSION,
            scenario: engine.scenario().name.clone(),
            seed: engine.config().seed,
            slot: engine.current_slot(),
            slice,
            state: SliceCheckpoint {
                kind: agent.kind(),
                agent,
                env,
            },
        })
    }

    /// Consumes the snapshot and returns the slice state, ready for
    /// [`onslicing_core::Orchestrator::import_slice`] or
    /// [`ScenarioEngine::inject_slice`].
    pub fn into_state(self) -> SliceCheckpoint {
        self.state
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("slice snapshot serialization cannot fail")
    }

    /// Parses a snapshot, rejecting unknown layout versions (the version
    /// stamp is peeked before the structural parse, like [`Checkpoint`]).
    pub fn from_json(text: &str) -> Result<Self, String> {
        peek_format_version(text, "slice snapshot", SLICE_SNAPSHOT_FORMAT_VERSION)?;
        let snapshot: SliceSnapshot =
            serde_json::from_str(text).map_err(|e| format!("malformed slice snapshot: {e}"))?;
        Ok(snapshot)
    }

    /// Writes the snapshot to a file crash-safely (temp file + fsync +
    /// atomic rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        atomic_write(path.as_ref(), &self.to_json())
            .map_err(|e| format!("cannot write slice snapshot: {e}"))
    }

    /// Reads and validates a snapshot file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| {
            format!(
                "cannot read slice snapshot {}: {e}",
                path.as_ref().display()
            )
        })?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onslicing_scenario::{builtin, ScenarioConfig};

    #[test]
    fn capture_restore_round_trips_through_json() {
        let mut engine = ScenarioEngine::new(builtin::steady(), ScenarioConfig::default()).unwrap();
        engine.run_until(5, &mut ());
        let checkpoint = Checkpoint::capture(&engine);
        assert_eq!(checkpoint.scenario, "steady");
        assert_eq!(checkpoint.slot, 5);
        let restored = Checkpoint::from_json(&checkpoint.to_json())
            .unwrap()
            .restore();
        assert_eq!(restored.current_slot(), 5);
        assert!(!restored.is_finished());
    }

    #[test]
    fn resume_refuses_a_different_admission_policy() {
        let cautious = ScenarioConfig {
            admission: onslicing_scenario::AdmissionConfig {
                policy: AdmissionPolicyName::CAUTIOUS,
                ..Default::default()
            },
            ..ScenarioConfig::default()
        };
        let mut engine = ScenarioEngine::new(builtin::steady(), cautious).unwrap();
        engine.run_until(3, &mut ());
        let checkpoint = Checkpoint::capture(&engine);
        assert_eq!(checkpoint.admission_policy(), AdmissionPolicyName::CAUTIOUS);
        let err = Checkpoint::from_json(&checkpoint.to_json())
            .unwrap()
            .restore_expecting(AdmissionPolicyName::GREEDY)
            .map(|_| ())
            .unwrap_err();
        assert!(
            err.contains("captured under admission policy `cautious`"),
            "{err}"
        );
        let restored = Checkpoint::from_json(&checkpoint.to_json())
            .unwrap()
            .restore_expecting(AdmissionPolicyName::CAUTIOUS)
            .unwrap();
        assert_eq!(restored.current_slot(), 3);
    }

    #[test]
    fn unknown_format_versions_are_rejected() {
        let mut engine = ScenarioEngine::new(builtin::steady(), ScenarioConfig::default()).unwrap();
        engine.run_until(1, &mut ());
        let mut checkpoint = Checkpoint::capture(&engine);
        checkpoint.format_version = 999;
        let err = Checkpoint::from_json(&checkpoint.to_json()).unwrap_err();
        assert!(err.contains("version 999"), "{err}");
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        assert!(Checkpoint::from_json("{not json").is_err());
        assert!(Checkpoint::load("/no/such/checkpoint.json").is_err());
    }

    #[test]
    fn stale_format_versions_fail_with_the_version_error_not_a_parse_error() {
        // A v2-era file is structurally incompatible (fields have come and
        // gone since), so the loader must report the version mismatch — the
        // actionable message — instead of tripping over a missing field.
        let stale = r#"{"format_version":2,"scenario":"steady","seed":7}"#;
        let err = Checkpoint::from_json(stale).unwrap_err();
        assert_eq!(
            err,
            "checkpoint format version 2 is not supported (expected 3)"
        );
        let stale_snapshot = r#"{"format_version":9,"scenario":"steady"}"#;
        let err = SliceSnapshot::from_json(stale_snapshot).unwrap_err();
        assert!(
            err.contains("format version 9 is not supported (expected 1)"),
            "{err}"
        );
        // A document with no stamp at all is malformed, not "version 0".
        let err = Checkpoint::from_json(r#"{"scenario":"steady"}"#).unwrap_err();
        assert!(err.contains("missing format_version"), "{err}");
    }

    #[test]
    fn truncated_documents_are_rejected_not_misparsed() {
        // A torn write that escaped the atomic-rename protocol is a prefix
        // of a valid document — different from arbitrary garbage, because
        // the version stamp may still peek successfully before the
        // structural parse hits the cut.
        let mut engine = ScenarioEngine::new(builtin::steady(), ScenarioConfig::default()).unwrap();
        engine.run_until(3, &mut ());
        let full = Checkpoint::capture(&engine).to_json();
        for cut in [1, full.len() / 2, full.len() - 1] {
            assert!(
                Checkpoint::from_json(&full[..cut]).is_err(),
                "checkpoint cut at byte {cut} must be rejected"
            );
        }
        let snapshot = SliceSnapshot::extract(&engine, 0).unwrap().to_json();
        for cut in [1, snapshot.len() / 2, snapshot.len() - 1] {
            assert!(
                SliceSnapshot::from_json(&snapshot[..cut]).is_err(),
                "slice snapshot cut at byte {cut} must be rejected"
            );
        }
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let mut engine = ScenarioEngine::new(builtin::steady(), ScenarioConfig::default()).unwrap();
        engine.run_until(2, &mut ());
        let checkpoint = Checkpoint::capture(&engine);
        let dir = std::env::temp_dir().join(format!("onslicing-ckpt-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        checkpoint.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.slot, checkpoint.slot);
        let temps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(
            temps.is_empty(),
            "save must not leave temp files: {temps:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slice_snapshots_extract_exact_state_without_disturbing_the_engine() {
        let mut engine = ScenarioEngine::new(builtin::steady(), ScenarioConfig::default()).unwrap();
        engine.run_until(7, &mut ());
        let before = serde_json::to_string(&engine).unwrap();
        let snapshot = SliceSnapshot::extract(&engine, 1).unwrap();
        assert_eq!(snapshot.scenario, "steady");
        assert_eq!(snapshot.slot, 7);
        assert_eq!(snapshot.slice, 1);
        // Extraction is a pure read.
        assert_eq!(serde_json::to_string(&engine).unwrap(), before);
        // The snapshot equals a destructive export from an engine clone.
        let mut clone: ScenarioEngine = serde_json::from_str(&before).unwrap();
        let exported = clone.extract_slice(1, 7).unwrap().checkpoint;
        let round = SliceSnapshot::from_json(&snapshot.to_json()).unwrap();
        let state = round.into_state();
        assert_eq!(state.kind, exported.kind);
        assert_eq!(
            serde_json::to_string(&state.agent).unwrap(),
            serde_json::to_string(&exported.agent).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&state.env).unwrap(),
            serde_json::to_string(&exported.env).unwrap()
        );
    }

    #[test]
    fn slice_snapshot_errors_are_graceful() {
        let engine = ScenarioEngine::new(builtin::steady(), ScenarioConfig::default()).unwrap();
        assert!(SliceSnapshot::extract(&engine, 99)
            .unwrap_err()
            .contains("not active"));
        let mut snapshot = SliceSnapshot::extract(&engine, 0).unwrap();
        snapshot.format_version = 999;
        assert!(SliceSnapshot::from_json(&snapshot.to_json())
            .unwrap_err()
            .contains("version 999"));
        assert!(SliceSnapshot::from_json("{not json").is_err());
    }
}
