//! Full-state scenario checkpoints.
//!
//! A [`Checkpoint`] wraps a [`ScenarioEngine`] serialized *between slots*
//! with enough metadata to sanity-check a restore. Everything dynamic is
//! inside the engine's own serialization: MLP/Gaussian/Bayesian weights and
//! Adam moments, PPO/BC/cost-estimator/Lagrangian state, rollout buffers,
//! per-slice environment + traffic-trace cursors and RNG streams, domain
//! capacities/overrides, orchestrator slice membership and the run-loop
//! cursor (pending event index, transient restores, report accumulators).
//!
//! The restore contract is exact: a checkpoint taken after slot `t` and
//! restored into a fresh process produces byte-identical telemetry for
//! slots `t..total_slots` (verified by `replay_check resume` in CI and the
//! property tests in `tests/checkpoint_replay.rs`).

use std::path::Path;

use serde::{Deserialize, Serialize};

use onslicing_scenario::ScenarioEngine;

/// Version stamp of the checkpoint JSON layout; bump on breaking changes so
/// stale files fail loudly instead of mis-restoring.
///
/// v2: the engine's `RunState` gained the `slot_cost_total` /
/// `slot_usage_weighted` accumulators and `ScenarioReport` the
/// `avg_slot_cost` / `avg_slot_usage_percent` fields, so v1 snapshots no
/// longer parse.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 2;

/// A versioned, self-describing snapshot of a scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Layout version ([`CHECKPOINT_FORMAT_VERSION`] at capture time).
    pub format_version: u32,
    /// Name of the scenario being executed.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Next slot the restored engine will execute.
    pub slot: usize,
    /// Scheduled scenario length in slots.
    pub total_slots: usize,
    /// The complete serialized deployment.
    engine: ScenarioEngine,
}

impl Checkpoint {
    /// Captures the engine's current state (call between slots — i.e. not
    /// from inside an observer callback).
    pub fn capture(engine: &ScenarioEngine) -> Self {
        Self {
            format_version: CHECKPOINT_FORMAT_VERSION,
            scenario: engine.scenario().name.clone(),
            seed: engine.config().seed,
            slot: engine.current_slot(),
            total_slots: engine.scenario().total_slots,
            engine: engine.clone(),
        }
    }

    /// Consumes the checkpoint and returns the engine, ready to execute the
    /// remaining slots.
    pub fn restore(self) -> ScenarioEngine {
        self.engine
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization cannot fail")
    }

    /// Parses a checkpoint, rejecting unknown layout versions.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let checkpoint: Checkpoint =
            serde_json::from_str(text).map_err(|e| format!("malformed checkpoint: {e}"))?;
        if checkpoint.format_version != CHECKPOINT_FORMAT_VERSION {
            return Err(format!(
                "checkpoint format version {} is not supported (expected {})",
                checkpoint.format_version, CHECKPOINT_FORMAT_VERSION
            ));
        }
        Ok(checkpoint)
    }

    /// Writes the checkpoint to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        std::fs::write(path.as_ref(), self.to_json())
            .map_err(|e| format!("cannot write checkpoint {}: {e}", path.as_ref().display()))
    }

    /// Reads and validates a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.as_ref().display()))?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onslicing_scenario::{builtin, ScenarioConfig};

    #[test]
    fn capture_restore_round_trips_through_json() {
        let mut engine = ScenarioEngine::new(builtin::steady(), ScenarioConfig::default()).unwrap();
        engine.run_until(5, &mut ());
        let checkpoint = Checkpoint::capture(&engine);
        assert_eq!(checkpoint.scenario, "steady");
        assert_eq!(checkpoint.slot, 5);
        let restored = Checkpoint::from_json(&checkpoint.to_json())
            .unwrap()
            .restore();
        assert_eq!(restored.current_slot(), 5);
        assert!(!restored.is_finished());
    }

    #[test]
    fn unknown_format_versions_are_rejected() {
        let mut engine = ScenarioEngine::new(builtin::steady(), ScenarioConfig::default()).unwrap();
        engine.run_until(1, &mut ());
        let mut checkpoint = Checkpoint::capture(&engine);
        checkpoint.format_version = 999;
        let err = Checkpoint::from_json(&checkpoint.to_json()).unwrap_err();
        assert!(err.contains("version 999"), "{err}");
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        assert!(Checkpoint::from_json("{not json").is_err());
        assert!(Checkpoint::load("/no/such/checkpoint.json").is_err());
    }
}
