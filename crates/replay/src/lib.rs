//! # onslicing-replay
//!
//! Deterministic checkpoint/replay and telemetry for the OnSlicing
//! reproduction — the audit layer the online-learning claims rest on: a
//! full deployment can be snapshotted mid-scenario, resumed bit-for-bit in
//! another process, and its per-slot metric traces regression-tested against
//! committed goldens.
//!
//! * [`checkpoint`] — [`Checkpoint`]: a versioned JSON snapshot of a
//!   [`onslicing_scenario::ScenarioEngine`] between slots (agent networks
//!   and Adam moments, rollout buffers, Lagrangian state, per-slice
//!   environment/simulator/RNG streams, domain allocations, run-loop
//!   cursor). `capture` → `save` → `load` → `restore` resumes the scenario
//!   exactly where it left off.
//! * [`telemetry`] — [`TelemetryRecorder`]: a
//!   [`onslicing_scenario::SlotObserver`] that records per-slot, per-slice
//!   metrics (cost, shaped reward, utilization, Lagrangian multiplier,
//!   baseline switches) and per-episode outcomes, finalized into a
//!   [`TelemetryTrace`] with per-slice percentile summaries — the
//!   `TRACE_<scenario>.json` artifact.
//! * [`golden`] — tolerance-based trace diffing and the golden-file
//!   workflow behind the `replay_check` binary (see the README for how to
//!   regenerate goldens when behavior intentionally changes).
//! * [`fsio`] — crash-safe snapshot file I/O: atomic writes (temp file +
//!   fsync + rename), the slot-stamped checkpoint naming convention, and
//!   the retention GC a cadence-checkpointing daemon runs over its state
//!   dir.

pub mod checkpoint;
pub mod fsio;
pub mod golden;
pub mod telemetry;

pub use checkpoint::{
    peek_format_version, Checkpoint, SliceSnapshot, CHECKPOINT_FORMAT_VERSION,
    SLICE_SNAPSHOT_FORMAT_VERSION,
};
pub use fsio::{
    atomic_write, checkpoint_file_name, gc_checkpoint_dir, list_checkpoint_slots,
    parse_checkpoint_slot, ATOMIC_WRITE_PAUSE_ENV,
};
pub use golden::{check_against_golden, diff_traces, golden_path, write_golden, Tolerance};
pub use telemetry::{
    percentile, record_scenario, EpisodeTelemetry, MigrationEvent, SliceSlotTelemetry,
    SliceTelemetrySummary, SlotTelemetry, TelemetryRecorder, TelemetryTrace, TRACE_FORMAT_VERSION,
};
