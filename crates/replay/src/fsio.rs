//! Crash-safe checkpoint file I/O.
//!
//! A daemon that checkpoints on a cadence must never leave a torn JSON
//! file where a loader expects a snapshot: a crash mid-`write` would
//! otherwise truncate the newest checkpoint and take the whole state dir
//! down with it. [`atomic_write`] therefore writes through a temp file in
//! the same directory, fsyncs it, and atomically renames it over the
//! destination — a reader either sees the old complete file or the new
//! complete file, never a prefix.
//!
//! The module also owns the naming convention of slot-stamped checkpoint
//! files (`checkpoint_<slot>.json`, fixed-width so lexicographic order is
//! slot order) plus the retention sweep ([`gc_checkpoint_dir`]) and the
//! resume scan ([`list_checkpoint_slots`]) over a directory of them.
//! Orphaned `*.tmp` files from an interrupted write are treated as garbage
//! by both.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Environment variable holding an artificial pause, in milliseconds,
/// between the temp-file fsync and the atomic rename. A pure test hook: the
/// crash-recovery suite kills a daemon inside this window to prove that an
/// interrupted checkpoint write leaves only a `.tmp` orphan behind and the
/// previous complete checkpoint still loads. Unset (the default) means no
/// pause.
pub const ATOMIC_WRITE_PAUSE_ENV: &str = "ONSLICING_ATOMIC_WRITE_PAUSE_MS";

/// Writes `contents` to `path` crash-safely: temp file in the same
/// directory, `fsync`, atomic rename. After a crash at any point the
/// destination holds either its previous contents or the new contents in
/// full — never a torn prefix (the interrupted attempt leaves at most a
/// `.tmp` orphan, which [`gc_checkpoint_dir`] sweeps).
pub fn atomic_write(path: impl AsRef<Path>, contents: &str) -> Result<(), String> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("cannot atomic-write {}: no file name", path.display()))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    let mut file =
        File::create(&tmp).map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
    file.write_all(contents.as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    file.sync_all()
        .map_err(|e| format!("cannot fsync {}: {e}", tmp.display()))?;
    drop(file);
    if let Some(pause_ms) = std::env::var(ATOMIC_WRITE_PAUSE_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|ms| *ms > 0)
    {
        std::thread::sleep(std::time::Duration::from_millis(pause_ms));
    }
    fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename {} -> {}: {e}", tmp.display(), path.display()))
}

/// Width the slot number is zero-padded to in checkpoint file names, so
/// lexicographic directory order equals slot order.
const SLOT_WIDTH: usize = 10;

/// The canonical file name of the checkpoint taken at slot boundary `slot`.
pub fn checkpoint_file_name(slot: usize) -> String {
    format!("checkpoint_{slot:0SLOT_WIDTH$}.json")
}

/// Parses the slot number out of a canonical checkpoint file name; `None`
/// for anything else (temp orphans, foreign files).
pub fn parse_checkpoint_slot(file_name: &str) -> Option<usize> {
    let digits = file_name
        .strip_prefix("checkpoint_")?
        .strip_suffix(".json")?;
    if digits.len() != SLOT_WIDTH || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The slots of every canonically named checkpoint in `dir`, ascending.
/// A missing directory is an empty list, not an error (a fresh state dir
/// simply has no checkpoints yet).
pub fn list_checkpoint_slots(dir: impl AsRef<Path>) -> Result<Vec<usize>, String> {
    let dir = dir.as_ref();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", dir.display())),
    };
    let mut slots = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        if let Some(slot) = entry.file_name().to_str().and_then(parse_checkpoint_slot) {
            slots.push(slot);
        }
    }
    slots.sort_unstable();
    Ok(slots)
}

/// Retention sweep over a checkpoint directory: keeps the newest `keep`
/// canonically named checkpoints, deletes the older ones and every `*.tmp`
/// orphan an interrupted [`atomic_write`] left behind. Returns the deleted
/// paths. `keep == 0` is rejected — a daemon must never GC away its own
/// resume point.
pub fn gc_checkpoint_dir(dir: impl AsRef<Path>, keep: usize) -> Result<Vec<PathBuf>, String> {
    if keep == 0 {
        return Err("checkpoint retention must keep at least one file".to_string());
    }
    let dir = dir.as_ref();
    let mut removed = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(removed),
        Err(e) => return Err(format!("cannot read {}: {e}", dir.display())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.ends_with(".tmp")) {
            let path = entry.path();
            fs::remove_file(&path).map_err(|e| format!("cannot remove {}: {e}", path.display()))?;
            removed.push(path);
        }
    }
    let slots = list_checkpoint_slots(dir)?;
    let expendable = slots.len().saturating_sub(keep);
    for slot in &slots[..expendable] {
        let path = dir.join(checkpoint_file_name(*slot));
        fs::remove_file(&path).map_err(|e| format!("cannot remove {}: {e}", path.display()))?;
        removed.push(path);
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "onslicing-fsio-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_the_destination_and_leaves_no_temp() {
        let dir = temp_dir("atomic");
        let path = dir.join("file.json");
        atomic_write(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        atomic_write(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files must not survive: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_names_round_trip_and_sort_by_slot() {
        assert_eq!(checkpoint_file_name(7), "checkpoint_0000000007.json");
        assert_eq!(parse_checkpoint_slot("checkpoint_0000000007.json"), Some(7));
        assert_eq!(
            parse_checkpoint_slot("checkpoint_0000000007.json.tmp"),
            None
        );
        assert_eq!(parse_checkpoint_slot("checkpoint_7.json"), None);
        assert_eq!(parse_checkpoint_slot("other.json"), None);
        assert!(checkpoint_file_name(9) < checkpoint_file_name(10));
    }

    #[test]
    fn gc_keeps_the_newest_n_and_sweeps_orphans() {
        let dir = temp_dir("gc");
        for slot in [4usize, 8, 12, 16] {
            fs::write(dir.join(checkpoint_file_name(slot)), "{}").unwrap();
        }
        fs::write(dir.join("checkpoint_0000000020.json.tmp"), "torn").unwrap();
        fs::write(dir.join("unrelated.txt"), "keep me").unwrap();
        let removed = gc_checkpoint_dir(&dir, 2).unwrap();
        assert_eq!(
            removed.len(),
            3,
            "two old checkpoints + one orphan: {removed:?}"
        );
        assert_eq!(list_checkpoint_slots(&dir).unwrap(), vec![12, 16]);
        assert!(dir.join("unrelated.txt").exists());
        assert!(gc_checkpoint_dir(&dir, 0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listing_a_missing_directory_is_empty_not_an_error() {
        let dir = std::env::temp_dir().join("onslicing-fsio-never-created");
        assert_eq!(list_checkpoint_slots(&dir).unwrap(), Vec::<usize>::new());
        assert_eq!(gc_checkpoint_dir(&dir, 3).unwrap(), Vec::<PathBuf>::new());
    }
}
