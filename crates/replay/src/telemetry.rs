//! Per-slot, per-slice telemetry traces.
//!
//! A [`TelemetryRecorder`] plugs into the scenario engine as a
//! [`SlotObserver`] and records, for every executed slot and every active
//! slice, the metrics the paper's evaluation is stated in: per-slot cost
//! (Eq. 10), the constraint-shaped reward, resource utilization (Eq. 9, as
//! a percentage), the Lagrangian multiplier λ and whether the proactive
//! safety switch handed the slot to the baseline — plus every closed
//! episode's summary. [`TelemetryRecorder::finalize`] adds per-slice
//! percentile summaries and produces the `TRACE_<scenario>.json` artifact
//! the golden harness diffs.
//!
//! Traces are fully deterministic for a fixed seed (no wall-clock fields,
//! no map iteration order), so two runs of the same scenario — whatever the
//! worker thread count — emit byte-identical JSON.

use std::path::Path;

use serde::{Deserialize, Serialize};

use onslicing_scenario::{
    EpisodeEndEvent, ScenarioConfig, ScenarioEngine, SliceReport, SlotObserver, SlotSample,
};
use onslicing_slices::SliceKind;

/// Version stamp of the trace JSON layout; bump on breaking changes and
/// regenerate the goldens.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// One slice's metrics for one executed slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceSlotTelemetry {
    /// Stable slice id.
    pub id: u32,
    /// Application class.
    pub kind: SliceKind,
    /// Per-slot cost `c(s_t, a_t)`.
    pub cost: f64,
    /// Constraint-shaped learning reward under the current λ.
    pub reward: f64,
    /// Resource utilization of the executed action, in percent of the six
    /// counted dimensions.
    pub usage_percent: f64,
    /// Normalized performance score `p_t / P` (larger is better).
    pub performance_score: f64,
    /// The agent's Lagrangian multiplier λ at decision time.
    pub lambda: f64,
    /// Whether the proactive safety switch handed this slot to the baseline.
    pub used_baseline: bool,
}

/// All slices' metrics for one executed slot, in slice position order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotTelemetry {
    /// Global scenario slot (0-based).
    pub slot: usize,
    /// One record per active slice.
    pub slices: Vec<SliceSlotTelemetry>,
}

/// One closed slice-episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeTelemetry {
    /// Global scenario slot at which the episode closed (`total_slots` for
    /// final partial episodes).
    pub slot: usize,
    /// Stable slice id.
    pub slice: u32,
    /// Application class.
    pub kind: SliceKind,
    /// Episode-average per-slot cost.
    pub avg_cost: f64,
    /// Episode-average resource usage in percent.
    pub avg_usage_percent: f64,
    /// Whether the episode violated the slice's SLA.
    pub violated: bool,
    /// Whether the agent switched to its baseline during the episode.
    pub switched_to_baseline: bool,
}

/// One live-migration endpoint recorded in a cell's telemetry stream: a
/// slice departing this cell for another, or arriving from one. The fleet
/// balancer records a departure in the source cell's trace and the matching
/// arrival in the target cell's, so the pair reconstructs the migration
/// from either side. Slice ids are per-cell: `slice` is this cell's id for
/// the slice, `peer_slice` its id in the peer cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationEvent {
    /// Global scenario slot the migration happened before (the slice's
    /// state moved between slot `slot - 1` and slot `slot`).
    pub slot: usize,
    /// This cell's id for the migrated slice.
    pub slice: u32,
    /// Application class.
    pub kind: SliceKind,
    /// `true` for an arrival into this cell, `false` for a departure.
    pub arrived: bool,
    /// The cell at the other end of the migration.
    pub peer_cell: u32,
    /// The slice's id in the peer cell.
    pub peer_slice: u32,
}

/// Percentile summary of one slice over the recorded window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceTelemetrySummary {
    /// Stable slice id.
    pub id: u32,
    /// Application class.
    pub kind: SliceKind,
    /// Recorded slots.
    pub slots: usize,
    /// Closed episodes.
    pub episodes: usize,
    /// Episodes that violated the SLA.
    pub violations: usize,
    /// Episodes in which the agent switched to the baseline.
    pub switched_episodes: usize,
    /// Slots the baseline policy served.
    pub baseline_slots: usize,
    /// Mean shaped reward over recorded slots.
    pub mean_reward: f64,
    /// Median per-slot cost.
    pub cost_p50: f64,
    /// 90th-percentile per-slot cost.
    pub cost_p90: f64,
    /// 99th-percentile per-slot cost.
    pub cost_p99: f64,
    /// Median utilization (percent).
    pub usage_p50: f64,
    /// 90th-percentile utilization (percent).
    pub usage_p90: f64,
    /// 99th-percentile utilization (percent).
    pub usage_p99: f64,
    /// λ after the last recorded slot.
    pub final_lambda: f64,
}

/// The complete telemetry artifact of one (possibly resumed) scenario run.
///
/// `Serialize`/`Deserialize` are hand-written (the vendored derive shim has
/// no `skip_serializing_if`): the `migrations` field is **omitted when
/// empty** — so single-cell traces, the committed goldens included, keep
/// their exact byte layout — and defaults to empty when absent, so traces
/// written before live migration existed still parse.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryTrace {
    /// Layout version ([`TRACE_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Scenario name.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// First recorded slot (0 for full runs, the checkpoint slot for
    /// resumed runs).
    pub start_slot: usize,
    /// Scheduled scenario length in slots.
    pub total_slots: usize,
    /// Per-slot records, in execution order.
    pub slots: Vec<SlotTelemetry>,
    /// Episode closures, in occurrence order.
    pub episodes: Vec<EpisodeTelemetry>,
    /// Live migrations touching this cell, in occurrence order (empty for
    /// single-cell runs).
    pub migrations: Vec<MigrationEvent>,
    /// Per-slice percentile summaries over the recorded window, in id order.
    pub summaries: Vec<SliceTelemetrySummary>,
}

impl serde::Serialize for TelemetryTrace {
    fn serialize_value(&self) -> serde::Value {
        let mut pairs = vec![
            (
                "format_version".to_string(),
                self.format_version.serialize_value(),
            ),
            ("scenario".to_string(), self.scenario.serialize_value()),
            ("seed".to_string(), self.seed.serialize_value()),
            ("start_slot".to_string(), self.start_slot.serialize_value()),
            (
                "total_slots".to_string(),
                self.total_slots.serialize_value(),
            ),
            ("slots".to_string(), self.slots.serialize_value()),
            ("episodes".to_string(), self.episodes.serialize_value()),
        ];
        if !self.migrations.is_empty() {
            pairs.push(("migrations".to_string(), self.migrations.serialize_value()));
        }
        pairs.push(("summaries".to_string(), self.summaries.serialize_value()));
        serde::Value::Obj(pairs)
    }
}

impl serde::Deserialize for TelemetryTrace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &str| {
            v.get(name).ok_or_else(|| {
                serde::DeError::msg(format!("missing field `{name}` in TelemetryTrace"))
            })
        };
        Ok(Self {
            format_version: serde::Deserialize::from_value(field("format_version")?)?,
            scenario: serde::Deserialize::from_value(field("scenario")?)?,
            seed: serde::Deserialize::from_value(field("seed")?)?,
            start_slot: serde::Deserialize::from_value(field("start_slot")?)?,
            total_slots: serde::Deserialize::from_value(field("total_slots")?)?,
            slots: serde::Deserialize::from_value(field("slots")?)?,
            episodes: serde::Deserialize::from_value(field("episodes")?)?,
            migrations: match v.get("migrations") {
                Some(value) => serde::Deserialize::from_value(value)?,
                None => Vec::new(),
            },
            summaries: serde::Deserialize::from_value(field("summaries")?)?,
        })
    }
}

impl TelemetryTrace {
    /// Serializes to pretty JSON (the `TRACE_<scenario>.json` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Parses a trace, rejecting unknown layout versions.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let trace: TelemetryTrace =
            serde_json::from_str(text).map_err(|e| format!("malformed trace: {e}"))?;
        if trace.format_version != TRACE_FORMAT_VERSION {
            return Err(format!(
                "trace format version {} is not supported (expected {})",
                trace.format_version, TRACE_FORMAT_VERSION
            ));
        }
        Ok(trace)
    }

    /// Writes the trace to a file crash-safely (temp file + fsync + atomic
    /// rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        crate::fsio::atomic_write(path.as_ref(), &self.to_json())
            .map_err(|e| format!("cannot write trace: {e}"))
    }

    /// Reads and validates a trace file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("cannot read trace {}: {e}", path.as_ref().display()))?;
        Self::from_json(&text)
    }

    /// The slot and episode records from `slot` on — what a run resumed at
    /// `slot` must reproduce exactly.
    pub fn suffix_from(&self, slot: usize) -> (Vec<SlotTelemetry>, Vec<EpisodeTelemetry>) {
        (
            self.slots
                .iter()
                .filter(|s| s.slot >= slot)
                .cloned()
                .collect(),
            self.episodes
                .iter()
                .filter(|e| e.slot >= slot)
                .cloned()
                .collect(),
        )
    }
}

/// Records slot samples and episode ends during a scenario run.
///
/// Serializable so a long-running service can checkpoint a recorder
/// mid-scenario and resume it: the restored recorder continues appending
/// where the snapshot stopped, and the finalized trace covers the whole run
/// as if it had never been interrupted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryRecorder {
    scenario: String,
    seed: u64,
    start_slot: usize,
    total_slots: usize,
    slots: Vec<SlotTelemetry>,
    episodes: Vec<EpisodeTelemetry>,
    migrations: Vec<MigrationEvent>,
}

impl TelemetryRecorder {
    /// Creates a recorder aligned with the engine's current position — slot
    /// 0 on a fresh engine, the checkpoint slot on a restored one.
    pub fn new(engine: &ScenarioEngine) -> Self {
        Self {
            scenario: engine.scenario().name.clone(),
            seed: engine.config().seed,
            start_slot: engine.current_slot(),
            total_slots: engine.scenario().total_slots,
            slots: Vec::new(),
            episodes: Vec::new(),
            migrations: Vec::new(),
        }
    }

    /// Records one live-migration endpoint (the fleet balancer calls this
    /// on the source cell's recorder for the departure and on the target
    /// cell's for the arrival).
    pub fn record_migration(&mut self, event: MigrationEvent) {
        self.migrations.push(event);
    }

    /// First recorded slot (0 for recorders attached to fresh engines).
    pub fn start_slot(&self) -> usize {
        self.start_slot
    }

    /// The per-slot records accumulated so far, in execution order — the
    /// live view a service reads for windowed telemetry without finalizing.
    pub fn slots(&self) -> &[SlotTelemetry] {
        &self.slots
    }

    /// The episode closures accumulated so far, in occurrence order.
    pub fn episodes(&self) -> &[EpisodeTelemetry] {
        &self.episodes
    }

    /// The migration endpoints recorded so far, in occurrence order.
    pub fn migrations(&self) -> &[MigrationEvent] {
        &self.migrations
    }

    /// Finalizes the recording into a trace with per-slice summaries.
    pub fn finalize(self) -> TelemetryTrace {
        // Every slice that appears anywhere in the window gets a summary —
        // including one whose only record is an episode end (e.g. a slice
        // torn down at the first slot after a checkpoint, before any
        // orchestration round of the resumed run).
        let mut ids: Vec<u32> = Vec::new();
        for slot in &self.slots {
            for s in &slot.slices {
                if !ids.contains(&s.id) {
                    ids.push(s.id);
                }
            }
        }
        for e in &self.episodes {
            if !ids.contains(&e.slice) {
                ids.push(e.slice);
            }
        }
        ids.sort_unstable();
        let summaries = ids
            .into_iter()
            .map(|id| {
                let mut kind = self
                    .episodes
                    .iter()
                    .find(|e| e.slice == id)
                    .map_or(SliceKind::Mar, |e| e.kind);
                let mut costs = Vec::new();
                let mut usages = Vec::new();
                let mut reward_sum = 0.0;
                let mut baseline_slots = 0usize;
                let mut final_lambda = 0.0;
                for slot in &self.slots {
                    for s in slot.slices.iter().filter(|s| s.id == id) {
                        kind = s.kind;
                        costs.push(s.cost);
                        usages.push(s.usage_percent);
                        reward_sum += s.reward;
                        if s.used_baseline {
                            baseline_slots += 1;
                        }
                        final_lambda = s.lambda;
                    }
                }
                let episodes: Vec<&EpisodeTelemetry> =
                    self.episodes.iter().filter(|e| e.slice == id).collect();
                SliceTelemetrySummary {
                    id,
                    kind,
                    slots: costs.len(),
                    episodes: episodes.len(),
                    violations: episodes.iter().filter(|e| e.violated).count(),
                    switched_episodes: episodes.iter().filter(|e| e.switched_to_baseline).count(),
                    baseline_slots,
                    mean_reward: if costs.is_empty() {
                        0.0
                    } else {
                        reward_sum / costs.len() as f64
                    },
                    cost_p50: percentile(&costs, 50.0),
                    cost_p90: percentile(&costs, 90.0),
                    cost_p99: percentile(&costs, 99.0),
                    usage_p50: percentile(&usages, 50.0),
                    usage_p90: percentile(&usages, 90.0),
                    usage_p99: percentile(&usages, 99.0),
                    final_lambda,
                }
            })
            .collect();
        TelemetryTrace {
            format_version: TRACE_FORMAT_VERSION,
            scenario: self.scenario,
            seed: self.seed,
            start_slot: self.start_slot,
            total_slots: self.total_slots,
            slots: self.slots,
            episodes: self.episodes,
            migrations: self.migrations,
            summaries,
        }
    }
}

impl SlotObserver for TelemetryRecorder {
    fn on_slot(&mut self, samples: &[SlotSample]) {
        let Some(first) = samples.first() else {
            return;
        };
        self.slots.push(SlotTelemetry {
            slot: first.slot,
            slices: samples
                .iter()
                .map(|s| SliceSlotTelemetry {
                    id: s.slice,
                    kind: s.kind,
                    cost: s.kpi.cost,
                    reward: s.reward,
                    usage_percent: s.kpi.resource_usage_percent(),
                    performance_score: s.kpi.performance_score,
                    lambda: s.lambda,
                    used_baseline: s.used_baseline,
                })
                .collect(),
        });
    }

    fn on_episode_end(&mut self, event: &EpisodeEndEvent) {
        self.episodes.push(EpisodeTelemetry {
            slot: event.slot,
            slice: event.slice,
            kind: event.summary.kind,
            avg_cost: event.summary.avg_cost,
            avg_usage_percent: event.summary.avg_usage_percent,
            violated: event.summary.violated,
            switched_to_baseline: event.summary.switched_to_baseline,
        });
    }
}

/// Nearest-rank percentile of an unsorted series (0.0 for an empty one).
///
/// `q` is a percentile rank; a value outside `[0, 100]` is a caller bug but
/// telemetry summaries are a production path, so out-of-range ranks clamp
/// into `[0, 100]` identically in debug and release builds (an earlier
/// `debug_assert!` made the two profiles disagree — debug aborted where
/// release degraded). A NaN rank pins to the minimum (rank 0), which is the
/// value the release-mode clamp has always produced, so the degradation is
/// deterministic rather than an accident of `NaN as usize`. By the
/// nearest-rank convention `q = 0` maps to rank `⌈0⌉ = 0`, which this
/// implementation pins to the first order statistic — i.e. `q = 0` returns
/// the minimum, `q = 100` the maximum.
///
/// Public because the fleet aggregator computes its fleet-wide cost and
/// latency summaries with exactly these semantics — a fleet percentile must
/// equal the percentile of the concatenated per-cell samples.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 100.0) };
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("telemetry series contain no NaN"));
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs a scenario from scratch with a telemetry recorder attached and
/// returns the trace plus the per-slice reports of the final
/// [`onslicing_scenario::ScenarioReport`].
pub fn record_scenario(
    scenario: onslicing_scenario::Scenario,
    config: ScenarioConfig,
) -> Result<(TelemetryTrace, Vec<SliceReport>), String> {
    let mut engine = ScenarioEngine::new(scenario, config)?;
    let mut recorder = TelemetryRecorder::new(&engine);
    let report = engine.run_with_observer(&mut recorder);
    Ok((recorder.finalize(), report.slices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use onslicing_scenario::builtin;

    #[test]
    fn percentile_uses_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 90.0), 90.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_edge_ranks_are_the_order_statistics() {
        let v = vec![3.0, 1.0, 2.0];
        // q = 0 pins the first order statistic (the minimum) by the
        // documented nearest-rank convention; q = 100 is the maximum.
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 3.0);
        // A single sample is every percentile at once.
        assert_eq!(percentile(&[42.0], 0.0), 42.0);
        assert_eq!(percentile(&[42.0], 100.0), 42.0);
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 100.0), 0.0);
    }

    #[test]
    fn out_of_range_percentile_ranks_clamp_in_every_build_profile() {
        // The old `debug_assert!` made debug builds abort where release
        // builds clamped; the clamp is now the contract in both profiles.
        let v = vec![3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 150.0), 3.0, "q > 100 clamps to the max");
        assert_eq!(percentile(&v, -1.0), 1.0, "q < 0 clamps to the min");
        assert_eq!(percentile(&v, f64::INFINITY), 3.0);
        assert_eq!(percentile(&v, f64::NEG_INFINITY), 1.0);
    }

    #[test]
    fn nan_percentile_rank_degrades_to_the_minimum_deterministically() {
        // NaN survives `f64::clamp`; before the explicit guard it reached
        // `NaN as usize` and happened to select index 0 in release while
        // aborting in debug. The guard pins that historical release value.
        let v = vec![3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, f64::NAN), 1.0);
        assert_eq!(percentile(&[], f64::NAN), 0.0);
    }

    #[test]
    fn migration_events_round_trip_and_stay_out_of_migration_free_traces() {
        // Without migrations the field is absent — committed goldens keep
        // their byte layout.
        let (trace, _) = record_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
        assert!(trace.migrations.is_empty());
        assert!(!trace.to_json().contains("\"migrations\""));

        let engine = ScenarioEngine::new(builtin::steady(), ScenarioConfig::default()).unwrap();
        let mut rec = TelemetryRecorder::new(&engine);
        rec.record_migration(MigrationEvent {
            slot: 16,
            slice: 2,
            kind: SliceKind::Rdc,
            arrived: false,
            peer_cell: 1,
            peer_slice: 4,
        });
        let trace = rec.finalize();
        assert_eq!(trace.migrations.len(), 1);
        let json = trace.to_json();
        assert!(json.contains("\"migrations\""));
        let back = TelemetryTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
        assert!(!back.migrations[0].arrived);
        assert_eq!(back.migrations[0].peer_cell, 1);
    }

    #[test]
    fn recorded_trace_covers_every_slot_and_episode() {
        let (trace, slices) =
            record_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
        assert_eq!(trace.scenario, "steady");
        assert_eq!(trace.start_slot, 0);
        assert_eq!(trace.slots.len(), trace.total_slots);
        assert_eq!(trace.summaries.len(), 3);
        for (summary, report) in trace.summaries.iter().zip(&slices) {
            assert_eq!(summary.id, report.id);
            assert_eq!(summary.episodes, report.episodes);
            assert_eq!(summary.violations, report.violations);
            assert!(summary.cost_p50 <= summary.cost_p90);
            assert!(summary.cost_p90 <= summary.cost_p99);
        }
        let episode_count: usize = slices.iter().map(|s| s.episodes).sum();
        assert_eq!(trace.episodes.len(), episode_count);
    }

    #[test]
    fn trace_json_round_trips_exactly() {
        let (trace, _) = record_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
        let json = trace.to_json();
        let back = TelemetryTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_json(), json, "re-serialization must be stable");
    }

    #[test]
    fn repeated_runs_emit_byte_identical_traces() {
        let (a, _) = record_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
        let (b, _) = record_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn summaries_include_slices_seen_only_in_episode_events() {
        // A slice torn down by the first event after a checkpoint emits an
        // episode end without ever appearing in a slot record; its summary
        // must not vanish from the resumed-window trace.
        let engine = ScenarioEngine::new(builtin::steady(), ScenarioConfig::default()).unwrap();
        let mut rec = TelemetryRecorder::new(&engine);
        rec.on_episode_end(&onslicing_scenario::EpisodeEndEvent {
            slot: 3,
            slice: 7,
            summary: onslicing_core::SliceEpisodeSummary {
                kind: SliceKind::Hvs,
                avg_cost: 0.12,
                violated: true,
                avg_usage_percent: 31.0,
                switched_to_baseline: false,
            },
        });
        let trace = rec.finalize();
        assert_eq!(trace.summaries.len(), 1);
        let summary = &trace.summaries[0];
        assert_eq!(summary.id, 7);
        assert_eq!(summary.kind, SliceKind::Hvs);
        assert_eq!(summary.slots, 0);
        assert_eq!(summary.episodes, 1);
        assert_eq!(summary.violations, 1);
    }

    #[test]
    fn suffix_partitions_the_trace() {
        let (trace, _) = record_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
        let (slots, episodes) = trace.suffix_from(24);
        assert!(slots.iter().all(|s| s.slot >= 24));
        assert!(episodes.iter().all(|e| e.slot >= 24));
        assert_eq!(
            slots.len() + trace.slots.iter().filter(|s| s.slot < 24).count(),
            trace.slots.len()
        );
    }

    #[test]
    fn unknown_trace_versions_are_rejected() {
        let (mut trace, _) = record_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
        trace.format_version = 42;
        assert!(TelemetryTrace::from_json(&trace.to_json())
            .unwrap_err()
            .contains("version 42"));
    }
}
