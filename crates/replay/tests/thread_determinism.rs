//! The thread-count determinism gate: `stress-many-slices` (12 slices, the
//! scenario built to exercise the rayon fan-out) must emit byte-identical
//! telemetry with the worker pool forced to one thread and at the machine
//! default. CI additionally runs the same comparison across separate
//! `replay_check` processes.
//!
//! This is deliberately the **only** test in this binary: the vendored
//! rayon reads `RAYON_NUM_THREADS` on every call, and mutating the process
//! environment is only safe while no other thread reads it concurrently.

use onslicing_replay::record_scenario;
use onslicing_scenario::{builtin, ScenarioConfig};

#[test]
fn stress_scenario_trace_is_byte_identical_across_thread_counts() {
    let record = || {
        let (trace, _) =
            record_scenario(builtin::stress_many_slices(), ScenarioConfig::default()).unwrap();
        trace.to_json()
    };
    let previous = std::env::var("RAYON_NUM_THREADS").ok();
    let default_threads = record();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let single_thread = record();
    // Restore whatever the harness was launched with (CI runs the whole
    // suite under RAYON_NUM_THREADS=1 in one job) instead of clobbering it.
    match previous {
        Some(value) => std::env::set_var("RAYON_NUM_THREADS", value),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    assert_eq!(
        default_threads, single_thread,
        "telemetry must not depend on the rayon worker count"
    );
}
