//! The control-plane wire protocol: line-delimited JSON over the daemon's
//! Unix socket.
//!
//! Every request is one JSON object on one line with an `"op"` field;
//! every response is one JSON object on one line with an `"ok"` boolean —
//! `true` plus op-specific fields, or `false` plus an `"error"` string.
//! Parsing is hand-rolled over [`serde::Value`] rather than derived:
//! derived deserialization in the vendored framework requires every field
//! to be present, and a protocol where clients must spell out `null` for
//! every optional knob is a protocol nobody gets right over `nc`.

use serde::Value;

use onslicing_scenario::SliceSpec;
use onslicing_slices::SliceKind;

/// Default `telemetry` window when the request does not name one.
pub const DEFAULT_TELEMETRY_WINDOW: usize = 16;

/// A parsed control request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Daemon and fleet liveness snapshot.
    Status,
    /// Windowed fleet telemetry report over the last `window` slots.
    Telemetry {
        /// Slots of history to aggregate.
        window: usize,
    },
    /// Fleet-level admission of a new slice at the current boundary.
    Admit {
        /// The requested slice.
        spec: SliceSpec,
    },
    /// Tear down one slice of one cell at the current boundary.
    Teardown {
        /// Hosting cell.
        cell: u32,
        /// Cell-local slice id.
        slice: u32,
    },
    /// Renegotiate one slice's SLA cost threshold at the current boundary.
    Renegotiate {
        /// Hosting cell.
        cell: u32,
        /// Cell-local slice id.
        slice: u32,
        /// The new `C_max`.
        cost_threshold: f64,
    },
    /// Force a checkpoint now.
    Checkpoint,
    /// Stop the clock: the fleet advances only via `step` until `resume`.
    Pause,
    /// Restart the clock.
    Resume,
    /// Advance the fleet to a specific slot (clamped to the scenario end)
    /// and reply once it is reached — the deterministic drill primitive.
    Step {
        /// Target global slot.
        to_slot: usize,
    },
    /// Graceful shutdown: final checkpoint, then exit.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Self, String> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("malformed request: {e}"))?;
        let op = value
            .get("op")
            .and_then(|v| v.as_str())
            .ok_or_else(|| "request needs a string `op` field".to_string())?;
        match op {
            "status" => Ok(Request::Status),
            "telemetry" => Ok(Request::Telemetry {
                window: match value.get("window") {
                    None => DEFAULT_TELEMETRY_WINDOW,
                    Some(v) => {
                        let w = v
                            .as_u64()
                            .ok_or_else(|| "`window` must be a positive integer".to_string())?;
                        if w == 0 {
                            return Err("`window` must be a positive integer".to_string());
                        }
                        w as usize
                    }
                },
            }),
            "admit" => {
                let kind = value
                    .get("kind")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| "admit needs a string `kind` field".to_string())?;
                let kind: SliceKind = kind.parse()?;
                let mut spec = SliceSpec::new(kind);
                spec.peak_rate = optional_f64(&value, "peak_rate")?;
                spec.cost_threshold = optional_f64(&value, "cost_threshold")?;
                Ok(Request::Admit { spec })
            }
            "teardown" => Ok(Request::Teardown {
                cell: required_u32(&value, "cell")?,
                slice: required_u32(&value, "slice")?,
            }),
            "renegotiate" => Ok(Request::Renegotiate {
                cell: required_u32(&value, "cell")?,
                slice: required_u32(&value, "slice")?,
                cost_threshold: optional_f64(&value, "cost_threshold")?
                    .ok_or_else(|| "renegotiate needs a numeric `cost_threshold`".to_string())?,
            }),
            "checkpoint" => Ok(Request::Checkpoint),
            "pause" => Ok(Request::Pause),
            "resume" => Ok(Request::Resume),
            "step" => {
                let to_slot = value
                    .get("to_slot")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| "step needs a non-negative integer `to_slot`".to_string())?;
                Ok(Request::Step {
                    to_slot: to_slot as usize,
                })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op `{other}` (expected one of: status, telemetry, admit, teardown, \
                 renegotiate, checkpoint, pause, resume, step, shutdown)"
            )),
        }
    }
}

fn required_u32(value: &Value, key: &str) -> Result<u32, String> {
    value
        .get(key)
        .and_then(|v| v.as_u64())
        .filter(|v| *v <= u64::from(u32::MAX))
        .map(|v| v as u32)
        .ok_or_else(|| format!("request needs a non-negative integer `{key}` field"))
}

fn optional_f64(value: &Value, key: &str) -> Result<Option<f64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a number")),
    }
}

/// The response of last resort: emitted if serializing a real response
/// ever fails. Static, so building it cannot itself fail — a daemon must
/// answer every request with *something* rather than panic.
pub const FALLBACK_ERROR_RESPONSE: &str =
    "{\"ok\":false,\"error\":\"internal: response serialization failed\"}";

/// Builds a success response line: `{"ok":true, ...fields}`.
pub fn ok_response(fields: Vec<(&str, Value)>) -> String {
    let mut pairs = vec![("ok".to_string(), Value::Bool(true))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    serde_json::to_string(&Value::Obj(pairs))
        .unwrap_or_else(|_| FALLBACK_ERROR_RESPONSE.to_string())
}

/// Builds an error response line: `{"ok":false,"error":...}`.
pub fn error_response(message: &str) -> String {
    serde_json::to_string(&Value::Obj(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(message.to_string())),
    ]))
    .unwrap_or_else(|_| FALLBACK_ERROR_RESPONSE.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_verb_parses_with_minimal_and_full_fields() {
        assert_eq!(
            Request::parse("{\"op\":\"status\"}").unwrap(),
            Request::Status
        );
        assert_eq!(
            Request::parse("{\"op\":\"telemetry\"}").unwrap(),
            Request::Telemetry {
                window: DEFAULT_TELEMETRY_WINDOW
            }
        );
        assert_eq!(
            Request::parse("{\"op\":\"telemetry\",\"window\":4}").unwrap(),
            Request::Telemetry { window: 4 }
        );
        let admit = Request::parse("{\"op\":\"admit\",\"kind\":\"hvs\"}").unwrap();
        assert_eq!(
            admit,
            Request::Admit {
                spec: SliceSpec::new(SliceKind::Hvs)
            }
        );
        let admit = Request::parse(
            "{\"op\":\"admit\",\"kind\":\"MAR\",\"peak_rate\":3.5,\"cost_threshold\":0.08}",
        )
        .unwrap();
        assert_eq!(
            admit,
            Request::Admit {
                spec: SliceSpec::new(SliceKind::Mar)
                    .with_peak_rate(3.5)
                    .with_cost_threshold(0.08)
            }
        );
        assert_eq!(
            Request::parse("{\"op\":\"teardown\",\"cell\":1,\"slice\":3}").unwrap(),
            Request::Teardown { cell: 1, slice: 3 }
        );
        assert_eq!(
            Request::parse(
                "{\"op\":\"renegotiate\",\"cell\":0,\"slice\":2,\"cost_threshold\":0.1}"
            )
            .unwrap(),
            Request::Renegotiate {
                cell: 0,
                slice: 2,
                cost_threshold: 0.1
            }
        );
        assert_eq!(
            Request::parse("{\"op\":\"step\",\"to_slot\":24}").unwrap(),
            Request::Step { to_slot: 24 }
        );
        for (line, expected) in [
            ("{\"op\":\"checkpoint\"}", Request::Checkpoint),
            ("{\"op\":\"pause\"}", Request::Pause),
            ("{\"op\":\"resume\"}", Request::Resume),
            ("{\"op\":\"shutdown\"}", Request::Shutdown),
        ] {
            assert_eq!(Request::parse(line).unwrap(), expected);
        }
    }

    #[test]
    fn malformed_requests_get_actionable_errors() {
        assert!(Request::parse("not json")
            .unwrap_err()
            .contains("malformed"));
        assert!(Request::parse("{}").unwrap_err().contains("`op`"));
        assert!(Request::parse("{\"op\":\"fly\"}")
            .unwrap_err()
            .contains("unknown op `fly`"));
        assert!(Request::parse("{\"op\":\"admit\"}")
            .unwrap_err()
            .contains("`kind`"));
        assert!(Request::parse("{\"op\":\"admit\",\"kind\":\"xxl\"}")
            .unwrap_err()
            .contains("unknown slice kind"));
        assert!(Request::parse("{\"op\":\"teardown\",\"cell\":0}")
            .unwrap_err()
            .contains("`slice`"));
        assert!(
            Request::parse("{\"op\":\"renegotiate\",\"cell\":0,\"slice\":1}")
                .unwrap_err()
                .contains("cost_threshold")
        );
        assert!(Request::parse("{\"op\":\"telemetry\",\"window\":0}")
            .unwrap_err()
            .contains("positive"));
        assert!(Request::parse("{\"op\":\"step\"}")
            .unwrap_err()
            .contains("to_slot"));
    }

    #[test]
    fn responses_are_single_json_lines() {
        let ok = ok_response(vec![("slot", Value::UInt(7))]);
        assert_eq!(ok, "{\"ok\":true,\"slot\":7}");
        let err = error_response("no such cell");
        assert_eq!(err, "{\"ok\":false,\"error\":\"no such cell\"}");
        assert!(!ok.contains('\n') && !err.contains('\n'));
    }
}
