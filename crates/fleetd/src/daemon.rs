//! The daemon: an [`ElasticFleet`] run continuously as a service with a
//! live control plane.
//!
//! One OS process per state directory (enforced by [`StateLock`]). The
//! main loop alternates between draining the control channel and advancing
//! the fleet one window of slots; control requests therefore apply only at
//! window boundaries — which are fleet sync boundaries — through the same
//! admission machinery the scripted paths use. Because every request is
//! logged with the slot it applied at (`requests.log`), a daemon run is a
//! pure function of (config, checkpoint, request log): replaying the log
//! with `step`/`pause` pins produces the same bytes.
//!
//! Durability: a [`FleetCheckpoint`] is written crash-safely every time
//! the global slot crosses a `[checkpoint] cadence_slots` boundary, on
//! demand (`checkpoint`), at graceful shutdown and at completion; older
//! files beyond `[checkpoint] retain` are garbage-collected. On startup
//! the daemon resumes from the **newest complete** checkpoint — torn
//! `*.tmp` partials are never even considered (the atomic-rename protocol
//! keeps them out of the namespace), and an unreadable or stale-format
//! file falls back to the next older one with a warning. When the
//! scenario completes, the daemon writes the final fleet trace
//! (`TRACE_FLEET_<scenario>.json`) and exits; re-starting a completed
//! state dir re-derives the identical trace and exits again — restart is
//! idempotent at every point of the lifecycle.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::Duration;

use serde::Value;

use onslicing_fleet::{ElasticFleet, FleetCheckpoint};
use onslicing_replay::{
    atomic_write, checkpoint_file_name, gc_checkpoint_dir, list_checkpoint_slots,
};
use onslicing_scenario::{fleet_by_name, LiveEventOutcome, ScenarioEvent, FLEET_BUILTIN_NAMES};

use crate::config::FleetdConfig;
use crate::lock::StateLock;
use crate::protocol::{error_response, ok_response, Request};

/// Name of the request audit log inside the state directory.
pub const REQUEST_LOG_NAME: &str = "requests.log";

/// Longest accepted control-request line, bytes (newline included). A
/// real request is a few hundred bytes; anything bigger is a client bug
/// or garbage piped at the socket, and the daemon must answer it with an
/// error response at bounded memory cost — never buffer without limit.
pub const MAX_REQUEST_LINE_BYTES: usize = 64 * 1024;

/// One queued control-plane message: the raw request line and the channel
/// the connection thread is blocked on for the response.
struct ControlMsg {
    line: String,
    reply: mpsc::Sender<String>,
}

/// Why the daemon's serve loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// A `shutdown` request was honored; state is checkpointed.
    Shutdown,
    /// The scenario ran to completion; the final trace is on disk.
    Completed,
}

/// Runs the daemon to completion or shutdown. This is `fleetd run`.
pub fn run(config: FleetdConfig) -> Result<ExitReason, String> {
    std::fs::create_dir_all(&config.state_dir).map_err(|e| {
        format!(
            "cannot create state dir {}: {e}",
            config.state_dir.display()
        )
    })?;
    let (lock, reclaimed) = StateLock::acquire(&config.state_dir)?;
    if reclaimed {
        eprintln!(
            "fleetd: reclaimed stale lock in {}",
            config.state_dir.display()
        );
    }
    let fleet = build_or_resume(&config)?;

    // We hold the lock, so a leftover socket file is ours to sweep.
    let _ = std::fs::remove_file(&config.control_socket);
    let listener = UnixListener::bind(&config.control_socket).map_err(|e| {
        format!(
            "cannot bind control socket {}: {e}",
            config.control_socket.display()
        )
    })?;
    let (tx, rx) = mpsc::channel::<ControlMsg>();
    std::thread::spawn(move || accept_loop(listener, tx));
    eprintln!(
        "fleetd: serving {} on {}",
        config.scenario,
        config.control_socket.display()
    );

    let reason = serve(&config, fleet, &rx);
    let _ = std::fs::remove_file(&config.control_socket);
    drop(lock);
    reason
}

/// Resumes from the newest complete checkpoint in the state dir, or builds
/// a fresh fleet when there is none. Unreadable, stale-format, incompatible
/// or unrestorable files fall back to the next older checkpoint with a
/// warning on stderr — a single bad file must never abort startup while an
/// older good one is sitting right next to it.
fn build_or_resume(config: &FleetdConfig) -> Result<ElasticFleet, String> {
    let mut slots = list_checkpoint_slots(&config.state_dir)
        .map_err(|e| format!("cannot scan state dir: {e}"))?;
    slots.reverse();
    for slot in slots {
        let path = config.state_dir.join(checkpoint_file_name(slot));
        match FleetCheckpoint::load(&path)
            .and_then(check_compatible(config))
            .and_then(FleetCheckpoint::restore)
        {
            Ok(fleet) => {
                eprintln!("fleetd: resuming from {} (slot {slot})", path.display());
                return Ok(fleet);
            }
            Err(e) => eprintln!("fleetd: skipping checkpoint {}: {e}", path.display()),
        }
    }
    let scenario = fleet_by_name(&config.scenario).ok_or_else(|| {
        format!(
            "unknown fleet scenario `{}` (built-ins: {})",
            config.scenario,
            FLEET_BUILTIN_NAMES.join(", ")
        )
    })?;
    eprintln!("fleetd: fresh start of `{}`", config.scenario);
    ElasticFleet::new(scenario, config.fleet)
}

/// A checkpoint is only resumable into a daemon whose config names the
/// same run: same scenario, same master seed, same admission and balance
/// policies — resuming under a different policy would splice two different
/// deterministic histories into one trace.
fn check_compatible(
    config: &FleetdConfig,
) -> impl Fn(FleetCheckpoint) -> Result<FleetCheckpoint, String> + '_ {
    move |checkpoint| {
        if checkpoint.scenario_name != config.scenario {
            return Err(format!(
                "it belongs to scenario `{}`, config says `{}`",
                checkpoint.scenario_name, config.scenario
            ));
        }
        if checkpoint.master_seed != config.fleet.base.seed {
            return Err(format!(
                "it was seeded {}, config says {}",
                checkpoint.master_seed, config.fleet.base.seed
            ));
        }
        if checkpoint.balance_policy() != config.fleet.balancer.policy {
            return Err(format!(
                "it ran balance policy `{}`, config says `{}`",
                checkpoint.balance_policy(),
                config.fleet.balancer.policy
            ));
        }
        if checkpoint.admission_policy() != config.fleet.base.admission.policy {
            return Err(format!(
                "it ran admission policy `{}`, config says `{}`",
                checkpoint.admission_policy(),
                config.fleet.base.admission.policy
            ));
        }
        Ok(checkpoint)
    }
}

fn accept_loop(listener: UnixListener, tx: mpsc::Sender<ControlMsg>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { break };
        let tx = tx.clone();
        std::thread::spawn(move || connection_loop(stream, tx));
    }
}

fn connection_loop(stream: UnixStream, tx: mpsc::Sender<ControlMsg>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = stream;
    let mut reader = BufReader::new(read_half);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // One line, read through a `take` so a single huge line costs at
        // most the cap in memory. Reading one byte past the cap is how an
        // exactly-cap-sized line is told apart from an oversized one.
        let n = match reader
            .by_ref()
            .take(MAX_REQUEST_LINE_BYTES as u64 + 1)
            .read_until(b'\n', &mut buf)
        {
            Ok(0) => break, // clean EOF
            Ok(n) => n,
            Err(_) => break,
        };
        if n > MAX_REQUEST_LINE_BYTES {
            // Oversized: answer with a JSON error, then drop the client —
            // the rest of the line is unread, so resynchronizing on the
            // next newline is not worth unbounded draining.
            let _ = write_half
                .write_all(
                    format!(
                        "{}\n",
                        error_response(&format!(
                            "request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"
                        ))
                    )
                    .as_bytes(),
                )
                .and_then(|()| write_half.flush());
            break;
        }
        let Ok(line) = String::from_utf8(std::mem::take(&mut buf)) else {
            // Binary garbage: an error response, then keep serving this
            // client — the stream is still newline-synchronized.
            if write_half
                .write_all(format!("{}\n", error_response("request is not valid UTF-8")).as_bytes())
                .is_err()
            {
                break;
            }
            continue;
        };
        if line.trim().is_empty() {
            continue;
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        if tx
            .send(ControlMsg {
                line: line.trim_end_matches(['\n', '\r']).to_string(),
                reply: reply_tx,
            })
            .is_err()
        {
            // Daemon loop is gone (shutdown raced us); drop the client.
            break;
        }
        let Ok(response) = reply_rx.recv() else { break };
        if write_half
            .write_all(format!("{response}\n").as_bytes())
            .is_err()
        {
            break;
        }
    }
}

/// The daemon state threaded through request handling.
struct Service<'a> {
    config: &'a FleetdConfig,
    fleet: ElasticFleet,
    paused: bool,
    /// Slot of the last checkpoint on disk (`None` before the first).
    /// Cadence checkpoints fire when the global slot crosses into a new
    /// cadence interval relative to this.
    last_checkpoint_slot: Option<usize>,
    stop: bool,
}

impl Service<'_> {
    fn checkpoint_now(&mut self) -> Result<PathBuf, String> {
        let slot = self.fleet.slot();
        let path = self.config.state_dir.join(checkpoint_file_name(slot));
        self.fleet.checkpoint().save(&path)?;
        self.last_checkpoint_slot = Some(slot);
        gc_checkpoint_dir(&self.config.state_dir, self.config.checkpoint.retain)
            .map_err(|e| format!("checkpoint GC failed: {e}"))?;
        Ok(path)
    }

    /// Writes a cadence checkpoint if the slot has crossed into a new
    /// `cadence_slots` interval since the last one on disk.
    fn maybe_cadence_checkpoint(&mut self) -> Result<(), String> {
        let cadence = self.config.checkpoint.cadence_slots;
        let slot = self.fleet.slot();
        let due = match self.last_checkpoint_slot {
            None => slot >= cadence,
            Some(last) => slot / cadence > last / cadence,
        };
        if due {
            self.checkpoint_now()?;
        }
        Ok(())
    }

    fn handle(&mut self, line: &str) -> String {
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(e) => return error_response(&e),
        };
        let slot = self.fleet.slot();
        let mutating = matches!(
            request,
            Request::Admit { .. }
                | Request::Teardown { .. }
                | Request::Renegotiate { .. }
                | Request::Step { .. }
        );
        if mutating && self.fleet.is_complete() {
            return error_response("scenario is complete; the daemon is finalizing");
        }
        match request {
            Request::Status => self.status_response(),
            Request::Telemetry { window } => self.telemetry_response(window),
            Request::Admit { spec } => match self.fleet.admit(&spec) {
                Some((cell, slice)) => ok_response(vec![
                    ("outcome", Value::Str("granted".to_string())),
                    ("cell", Value::UInt(u64::from(cell))),
                    ("slice", Value::UInt(u64::from(slice))),
                    ("slot", Value::UInt(slot as u64)),
                ]),
                None => ok_response(vec![
                    ("outcome", Value::Str("denied".to_string())),
                    ("slot", Value::UInt(slot as u64)),
                ]),
            },
            Request::Teardown { cell, slice } => {
                self.event_response(cell, &ScenarioEvent::TeardownSlice { slice })
            }
            Request::Renegotiate {
                cell,
                slice,
                cost_threshold,
            } => self.event_response(
                cell,
                &ScenarioEvent::RenegotiateSla {
                    slice,
                    cost_threshold,
                },
            ),
            Request::Checkpoint => match self.checkpoint_now() {
                Ok(path) => ok_response(vec![
                    ("path", Value::Str(path.display().to_string())),
                    ("slot", Value::UInt(slot as u64)),
                ]),
                Err(e) => error_response(&e),
            },
            Request::Pause => {
                self.paused = true;
                ok_response(vec![("paused", Value::Bool(true))])
            }
            Request::Resume => {
                self.paused = false;
                ok_response(vec![("paused", Value::Bool(false))])
            }
            Request::Step { to_slot } => {
                let result = self
                    .fleet
                    .advance_to(to_slot)
                    .and_then(|reached| self.maybe_cadence_checkpoint().map(|()| reached));
                match result {
                    Ok(reached) => ok_response(vec![("slot", Value::UInt(reached as u64))]),
                    Err(e) => error_response(&e),
                }
            }
            Request::Shutdown => match self.checkpoint_now() {
                Ok(path) => {
                    self.stop = true;
                    ok_response(vec![
                        ("slot", Value::UInt(slot as u64)),
                        ("checkpoint", Value::Str(path.display().to_string())),
                    ])
                }
                Err(e) => error_response(&e),
            },
        }
    }

    fn event_response(&mut self, cell: u32, event: &ScenarioEvent) -> String {
        let slot = self.fleet.slot();
        match self.fleet.inject_cell_event(cell, event) {
            Ok(outcome) => {
                let outcome = match outcome {
                    LiveEventOutcome::Applied => "applied",
                    LiveEventOutcome::Denied => "denied",
                    LiveEventOutcome::Skipped => "skipped",
                };
                ok_response(vec![
                    ("outcome", Value::Str(outcome.to_string())),
                    ("slot", Value::UInt(slot as u64)),
                ])
            }
            Err(e) => error_response(&e),
        }
    }

    fn status_response(&self) -> String {
        ok_response(vec![
            ("scenario", Value::Str(self.fleet.scenario().name.clone())),
            ("seed", Value::UInt(self.fleet.config().base.seed)),
            ("slot", Value::UInt(self.fleet.slot() as u64)),
            ("total_slots", Value::UInt(self.fleet.total_slots() as u64)),
            ("complete", Value::Bool(self.fleet.is_complete())),
            ("paused", Value::Bool(self.paused)),
            ("cells", Value::UInt(self.fleet.cells().len() as u64)),
            (
                "admission_policy",
                Value::Str(
                    self.fleet
                        .config()
                        .base
                        .admission
                        .policy
                        .as_str()
                        .to_string(),
                ),
            ),
            (
                "balance_policy",
                Value::Str(self.fleet.config().balancer.policy.as_str().to_string()),
            ),
            (
                "active_slices",
                Value::UInt(self.fleet.active_slices() as u64),
            ),
            (
                "fleet_admissions_granted",
                Value::UInt(self.fleet.fleet_admissions_granted() as u64),
            ),
            (
                "fleet_admissions_denied",
                Value::UInt(self.fleet.fleet_admissions_denied() as u64),
            ),
            (
                "migrations",
                Value::UInt(self.fleet.migrations().len() as u64),
            ),
            (
                "utilization",
                Value::Arr(
                    self.fleet
                        .cell_utilizations()
                        .into_iter()
                        .map(Value::Float)
                        .collect(),
                ),
            ),
        ])
    }

    /// The windowed fleet report: per cell, mean cost and utilization over
    /// the last `window` recorded slots plus lifetime counters.
    fn telemetry_response(&self, window: usize) -> String {
        let mut cells = Vec::with_capacity(self.fleet.cells().len());
        for c in self.fleet.cells() {
            let slots = c.recorder.slots();
            let tail = &slots[slots.len().saturating_sub(window)..];
            let mut samples = 0usize;
            let mut cost_sum = 0.0;
            let mut usage_sum = 0.0;
            for slot in tail {
                for slice in &slot.slices {
                    samples += 1;
                    cost_sum += slice.cost;
                    usage_sum += slice.usage_percent;
                }
            }
            let mean = |sum: f64| {
                if samples == 0 {
                    0.0
                } else {
                    sum / samples as f64
                }
            };
            cells.push(Value::Obj(vec![
                ("cell".to_string(), Value::UInt(u64::from(c.cell))),
                (
                    "active_slices".to_string(),
                    Value::UInt(c.engine.orchestrator().num_slices() as u64),
                ),
                ("window_slots".to_string(), Value::UInt(tail.len() as u64)),
                ("window_avg_cost".to_string(), Value::Float(mean(cost_sum))),
                (
                    "window_avg_usage_percent".to_string(),
                    Value::Float(mean(usage_sum)),
                ),
                (
                    "episodes".to_string(),
                    Value::UInt(c.recorder.episodes().len() as u64),
                ),
                (
                    "migrations".to_string(),
                    Value::UInt(c.recorder.migrations().len() as u64),
                ),
            ]));
        }
        ok_response(vec![
            ("slot", Value::UInt(self.fleet.slot() as u64)),
            ("window", Value::UInt(window as u64)),
            ("cells", Value::Arr(cells)),
        ])
    }
}

fn serve(
    config: &FleetdConfig,
    fleet: ElasticFleet,
    rx: &mpsc::Receiver<ControlMsg>,
) -> Result<ExitReason, String> {
    let log_path = config.state_dir.join(REQUEST_LOG_NAME);
    let mut request_log = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&log_path)
        .map_err(|e| format!("cannot open request log {}: {e}", log_path.display()))?;
    let resumed_at = fleet.slot();
    let mut service = Service {
        config,
        fleet,
        paused: config.start_paused,
        // Resuming from a checkpoint means one exists at the current slot;
        // anchoring the cadence there avoids an immediate duplicate write.
        last_checkpoint_slot: (resumed_at > 0).then_some(resumed_at),
        stop: false,
    };

    loop {
        // Control phase: when the clock is stopped (paused, or nothing
        // left to step) block briefly on the channel; otherwise just drain
        // whatever arrived during the last window.
        let idle = service.paused || service.fleet.is_complete();
        let first = if idle {
            rx.recv_timeout(Duration::from_millis(50)).ok()
        } else {
            rx.try_recv().ok()
        };
        let mut next = first;
        while let Some(msg) = next {
            let response = service.handle(&msg.line);
            append_request_log(&mut request_log, service.fleet.slot(), &msg.line, &response);
            let _ = msg.reply.send(response);
            if service.stop {
                return Ok(ExitReason::Shutdown);
            }
            next = rx.try_recv().ok();
        }
        if service.fleet.is_complete() {
            if !service.paused {
                return finalize(config, service);
            }
            continue;
        }
        if service.paused {
            continue;
        }
        // Clock phase: one window of slots, then durability bookkeeping.
        let target = service.fleet.slot() + config.window_slots;
        service.fleet.advance_to(target)?;
        service.maybe_cadence_checkpoint()?;
    }
}

fn append_request_log(log: &mut std::fs::File, slot: usize, line: &str, response: &str) {
    // The audit log is best-effort (plain appends, no fsync): it exists so
    // a drill can be replayed, not to survive torn tails.
    let entry = format!(
        "{{\"slot\":{slot},\"request\":{},\"response\":{response}}}\n",
        line.trim()
    );
    let _ = log.write_all(entry.as_bytes());
}

/// Completion path: final checkpoint at the terminal slot, then the final
/// fleet trace, then exit. Every step is idempotent, so a crash anywhere
/// in here is healed by simply starting the daemon again.
fn finalize(config: &FleetdConfig, mut service: Service<'_>) -> Result<ExitReason, String> {
    service.checkpoint_now()?;
    let scenario = service.fleet.scenario().name.clone();
    let outcome = service.fleet.finish(0.0)?;
    let trace_path = final_trace_path(&config.state_dir, &scenario);
    atomic_write(&trace_path, &outcome.trace.to_json())
        .map_err(|e| format!("cannot write final trace: {e}"))?;
    eprintln!(
        "fleetd: scenario complete, trace at {}",
        trace_path.display()
    );
    Ok(ExitReason::Completed)
}

/// Where the daemon writes the final fleet trace for `scenario`.
pub fn final_trace_path(state_dir: &Path, scenario: &str) -> PathBuf {
    state_dir.join(format!("TRACE_FLEET_{scenario}.json"))
}

/// One-shot control client: connects, sends one request line, returns the
/// response line. This is `fleetd ctl` and the integration tests' driver.
pub fn send_request(socket: &Path, line: &str) -> Result<String, String> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
    let mut write_half = stream
        .try_clone()
        .map_err(|e| format!("cannot clone socket: {e}"))?;
    write_half
        .write_all(format!("{}\n", line.trim()).as_bytes())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .map_err(|e| format!("cannot read response: {e}"))?;
    if response.is_empty() {
        return Err("daemon closed the connection without responding".to_string());
    }
    Ok(response.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CheckpointPolicy;
    use onslicing_fleet::ElasticFleetConfig;

    const SCENARIO: &str = "hotspot-shift";
    const SEED: u64 = 17;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fleetd-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn test_config(state_dir: &Path) -> FleetdConfig {
        FleetdConfig {
            scenario: SCENARIO.to_string(),
            fleet: ElasticFleetConfig::new(2).with_seed(SEED),
            state_dir: state_dir.to_path_buf(),
            control_socket: state_dir.join("control.sock"),
            start_paused: true,
            window_slots: 1,
            checkpoint: CheckpointPolicy::default(),
        }
    }

    /// Advances a fresh fleet of `scenario` to `slot` and returns the
    /// checkpoint JSON it would write.
    fn checkpoint_json(scenario: &str, seed: u64, slot: usize) -> String {
        let mut fleet = ElasticFleet::new(
            fleet_by_name(scenario).unwrap(),
            ElasticFleetConfig::new(2).with_seed(seed),
        )
        .unwrap();
        fleet.advance_to(slot).unwrap();
        fleet.checkpoint().to_json()
    }

    fn plant(dir: &Path, slot: usize, text: &str) {
        std::fs::write(dir.join(checkpoint_file_name(slot)), text).unwrap();
    }

    #[test]
    fn fresh_start_when_no_checkpoint_exists() {
        let dir = scratch("fresh");
        let fleet = build_or_resume(&test_config(&dir)).unwrap();
        assert_eq!(fleet.slot(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumes_from_newest_complete_checkpoint_ignoring_tmp_partials() {
        let dir = scratch("newest");
        plant(&dir, 8, &checkpoint_json(SCENARIO, SEED, 8));
        plant(&dir, 16, &checkpoint_json(SCENARIO, SEED, 16));
        // A crashed writer's partial for a newer slot must never even be
        // considered (it is not in the checkpoint namespace).
        std::fs::write(
            dir.join(format!("{}.tmp", checkpoint_file_name(24))),
            "{\"format_version\":1,\"scenario_na",
        )
        .unwrap();
        let fleet = build_or_resume(&test_config(&dir)).unwrap();
        assert_eq!(fleet.slot(), 16);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_format_version_falls_back_to_the_next_older_checkpoint() {
        let dir = scratch("stale-format");
        plant(&dir, 8, &checkpoint_json(SCENARIO, SEED, 8));
        let doctored = checkpoint_json(SCENARIO, SEED, 16).replacen(
            "\"format_version\":1",
            "\"format_version\":9",
            1,
        );
        plant(&dir, 16, &doctored);
        let fleet = build_or_resume(&test_config(&dir)).unwrap();
        assert_eq!(
            fleet.slot(),
            8,
            "the v9 file must be skipped with a warning"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_and_seed_mismatches_fall_back() {
        let dir = scratch("mismatch");
        plant(&dir, 8, &checkpoint_json(SCENARIO, SEED, 8));
        // Slot 20: a checkpoint of a different run entirely.
        plant(&dir, 20, &checkpoint_json("cell-outage", SEED, 20));
        // Slot 16: right scenario, wrong master seed.
        plant(&dir, 16, &checkpoint_json(SCENARIO, 99, 16));
        let fleet = build_or_resume(&test_config(&dir)).unwrap();
        assert_eq!(fleet.slot(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_mismatches_fall_back() {
        use onslicing_fleet::{BalancePolicyName, BalancerConfig};
        let dir = scratch("policy-mismatch");
        plant(&dir, 8, &checkpoint_json(SCENARIO, SEED, 8));
        // Slot 16: same scenario and seed, but the run used the predictive
        // balancer — a greedy daemon must not splice its history in.
        let mut fleet = ElasticFleet::new(
            fleet_by_name(SCENARIO).unwrap(),
            ElasticFleetConfig::new(2)
                .with_seed(SEED)
                .with_balancer(BalancerConfig {
                    policy: BalancePolicyName::PREDICTIVE,
                    ..BalancerConfig::default()
                }),
        )
        .unwrap();
        fleet.advance_to(16).unwrap();
        plant(&dir, 16, &fleet.checkpoint().to_json());
        let resumed = build_or_resume(&test_config(&dir)).unwrap();
        assert_eq!(resumed.slot(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checkpoint_falls_back() {
        let dir = scratch("truncated");
        plant(&dir, 8, &checkpoint_json(SCENARIO, SEED, 8));
        let full = checkpoint_json(SCENARIO, SEED, 16);
        plant(&dir, 16, &full[..full.len() / 2]);
        let fleet = build_or_resume(&test_config(&dir)).unwrap();
        assert_eq!(fleet.slot(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unrestorable_checkpoint_falls_back_instead_of_aborting_startup() {
        // A file that loads and passes the compatibility gate but whose
        // restore() fails (no cells) used to abort startup; it must fall
        // back to the older good checkpoint like every other bad file.
        let dir = scratch("unrestorable");
        plant(&dir, 8, &checkpoint_json(SCENARIO, SEED, 8));
        let mut value: Value = serde_json::from_str(&checkpoint_json(SCENARIO, SEED, 16)).unwrap();
        if let Value::Obj(pairs) = &mut value {
            for (key, v) in pairs.iter_mut() {
                if key == "cells" {
                    *v = Value::Arr(Vec::new());
                }
            }
        }
        plant(&dir, 16, &serde_json::to_string(&value).unwrap());
        let fleet = build_or_resume(&test_config(&dir)).unwrap();
        assert_eq!(fleet.slot(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_checkpoints_bad_means_fresh_start_not_an_error() {
        let dir = scratch("all-bad");
        plant(&dir, 8, "{\"format_version\":1,\"scenario_na");
        plant(&dir, 16, &checkpoint_json(SCENARIO, 99, 16));
        let fleet = build_or_resume(&test_config(&dir)).unwrap();
        assert_eq!(fleet.slot(), 0, "every file skipped, fresh start");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
