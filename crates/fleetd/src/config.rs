//! `config.toml` parsing for the daemon.
//!
//! The registry is unreachable from this build environment, so there is no
//! `toml` crate to lean on; [`parse_toml`] implements the small subset the
//! daemon config actually uses — `#` comments, `[section]` headers and
//! scalar `key = value` pairs (strings, booleans, integers, floats) — and
//! rejects everything else loudly rather than guessing. [`FleetdConfig`]
//! layers defaults and typo detection on top: every key the file mentions
//! must be one the daemon knows, so a misspelled `cadence_slots` is a
//! startup error, not a silently ignored line.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use onslicing_fleet::{BalancePolicyName, BalancerConfig, ElasticFleetConfig};
use onslicing_scenario::{AdmissionConfig, AdmissionPolicyName, ScenarioConfig};

/// One scalar TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A double-quoted string (no escapes beyond `\"` and `\\`).
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
}

/// Parsed TOML subset: section name (empty for the root) → key → value.
pub type TomlTable = BTreeMap<String, BTreeMap<String, TomlValue>>;

/// Parses the TOML subset described in the module docs. Duplicate keys in
/// one section, bare keys without `=`, arrays, inline tables and dotted
/// keys are all errors.
pub fn parse_toml(text: &str) -> Result<TomlTable, String> {
    let mut table = TomlTable::new();
    table.insert(String::new(), BTreeMap::new());
    let mut section = String::new();
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {line_no}: unterminated section header"))?
                .trim();
            if name.is_empty() || name.contains(['[', ']', '.']) {
                return Err(format!("line {line_no}: invalid section name `{name}`"));
            }
            section = name.to_string();
            table.entry(section.clone()).or_default();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() || key.contains(['.', ' ', '\t', '"']) {
            return Err(format!("line {line_no}: invalid key `{key}`"));
        }
        let value = parse_value(value.trim()).map_err(|e| format!("line {line_no}: {e}"))?;
        // `entry` rather than an "always present" unwrap: the daemon
        // contract bans panics outside tests, and the entry API costs
        // nothing here (the section was inserted when its header parsed).
        let entries = table.entry(section.clone()).or_default();
        if entries.insert(key.to_string(), value).is_some() {
            return Err(format!("line {line_no}: duplicate key `{key}`"));
        }
    }
    Ok(table)
}

/// Strips a `#` comment, honoring `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<TomlValue, String> {
    if let Some(rest) = text.strip_prefix('"') {
        let body = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{text}`"))?;
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '"' {
                return Err(format!("stray quote inside string `{text}`"));
            }
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                other => return Err(format!("unsupported escape `\\{}`", other.unwrap_or(' '))),
            }
        }
        return Ok(TomlValue::Str(out));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(TomlValue::Int(i));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Ok(TomlValue::Float(f));
    }
    Err(format!(
        "unsupported value `{text}` (expected a string, boolean, integer or float)"
    ))
}

/// Checkpointing cadence and retention of the daemon's state directory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPolicy {
    /// A checkpoint is written whenever the global slot reaches a multiple
    /// of this cadence (and at shutdown and completion regardless).
    pub cadence_slots: usize,
    /// Completed checkpoints kept in the state directory; older ones are
    /// garbage-collected after every successful write.
    pub retain: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        Self {
            cadence_slots: 8,
            retain: 4,
        }
    }
}

/// The daemon configuration, as loaded from `config.toml`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetdConfig {
    /// Built-in fleet scenario name ([`onslicing_scenario::fleet_by_name`]).
    pub scenario: String,
    /// Fleet shape and tuning (cells, master seed, balancer).
    pub fleet: ElasticFleetConfig,
    /// Where checkpoints, the final trace, the lock file and the request
    /// log live. Created on startup if missing.
    pub state_dir: PathBuf,
    /// Control-plane Unix socket path; defaults to `control.sock` inside
    /// the state directory.
    pub control_socket: PathBuf,
    /// Start with the clock paused: the fleet advances only on `step`
    /// requests until a `resume` arrives. This is what makes control-plane
    /// drills deterministic — requests land at scripted slots instead of
    /// wherever the wall clock happened to be.
    pub start_paused: bool,
    /// Slots advanced per main-loop iteration while running unpaused; the
    /// control plane is polled between windows, so this bounds request
    /// latency in slots.
    pub window_slots: usize,
    /// Checkpoint cadence and retention.
    pub checkpoint: CheckpointPolicy,
}

impl FleetdConfig {
    /// Parses a config file's text. `config_dir` anchors relative paths
    /// (the directory the file lives in, conventionally).
    pub fn from_toml(text: &str, config_dir: &Path) -> Result<Self, String> {
        let mut table = parse_toml(text)?;
        let mut root = table.remove("").unwrap_or_default();
        let mut admission_section = table.remove("admission").unwrap_or_default();
        let mut balancer_section = table.remove("balancer").unwrap_or_default();
        let mut checkpoint_section = table.remove("checkpoint").unwrap_or_default();
        if let Some(section) = table.keys().next() {
            return Err(format!(
                "unknown section `[{section}]` (expected [admission], [balancer] or [checkpoint])"
            ));
        }

        let scenario = match root.remove("scenario") {
            Some(TomlValue::Str(s)) => s,
            Some(_) => return Err("`scenario` must be a string".to_string()),
            None => return Err("missing required key `scenario`".to_string()),
        };
        let cells = take_usize(&mut root, "cells")?.unwrap_or(2);
        let seed = match take_usize(&mut root, "seed")? {
            Some(s) => s as u64,
            None => 0,
        };
        let state_dir = match root.remove("state_dir") {
            Some(TomlValue::Str(s)) => anchor(config_dir, &s),
            Some(_) => return Err("`state_dir` must be a string".to_string()),
            None => config_dir.join("fleetd-state"),
        };
        let control_socket = match root.remove("control_socket") {
            Some(TomlValue::Str(s)) => anchor(config_dir, &s),
            Some(_) => return Err("`control_socket` must be a string".to_string()),
            None => state_dir.join("control.sock"),
        };
        let start_paused = take_bool(&mut root, "start_paused")?.unwrap_or(false);
        let window_slots = take_usize(&mut root, "window_slots")?.unwrap_or(1);
        if window_slots == 0 {
            return Err("`window_slots` must be at least 1".to_string());
        }
        reject_unknown(&root, "the top level")?;

        // Both policies resolve through their registries at parse time, so a
        // misspelled name is a startup error naming the registered set.
        let mut admission = AdmissionConfig::default();
        if let Some(name) = take_str(&mut admission_section, "policy")? {
            admission.policy = AdmissionPolicyName::parse(&name)?;
        }
        reject_unknown(&admission_section, "[admission]")?;

        let mut balancer = BalancerConfig::default();
        if let Some(name) = take_str(&mut balancer_section, "policy")? {
            balancer.policy = BalancePolicyName::parse(&name)?;
        }
        if let Some(enabled) = take_bool(&mut balancer_section, "enabled")? {
            balancer.enabled = enabled;
        }
        if let Some(v) = take_usize(&mut balancer_section, "cadence_slots")? {
            balancer.cadence_slots = v;
        }
        if let Some(v) = take_usize(&mut balancer_section, "max_migrations_per_round")? {
            balancer.max_migrations_per_round = v;
        }
        if let Some(v) = take_f64(&mut balancer_section, "min_load_gap")? {
            balancer.min_load_gap = v;
        }
        if let Some(v) = take_f64(&mut balancer_section, "violation_weight")? {
            balancer.violation_weight = v;
        }
        if let Some(v) = take_usize(&mut balancer_section, "min_slices_per_cell")? {
            balancer.min_slices_per_cell = v;
        }
        reject_unknown(&balancer_section, "[balancer]")?;

        let mut checkpoint = CheckpointPolicy::default();
        if let Some(v) = take_usize(&mut checkpoint_section, "cadence_slots")? {
            checkpoint.cadence_slots = v;
        }
        if let Some(v) = take_usize(&mut checkpoint_section, "retain")? {
            checkpoint.retain = v;
        }
        reject_unknown(&checkpoint_section, "[checkpoint]")?;
        if checkpoint.cadence_slots == 0 {
            return Err("`[checkpoint] cadence_slots` must be at least 1".to_string());
        }
        if checkpoint.retain == 0 {
            return Err("`[checkpoint] retain` must be at least 1".to_string());
        }

        let fleet = ElasticFleetConfig {
            cells,
            base: ScenarioConfig {
                seed,
                admission,
                ..ScenarioConfig::default()
            },
            balancer,
        };
        Ok(Self {
            scenario,
            fleet,
            state_dir,
            control_socket,
            start_paused,
            window_slots,
            checkpoint,
        })
    }

    /// Reads and parses a config file; relative paths inside it are
    /// anchored at the file's directory.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read config {}: {e}", path.display()))?;
        let dir = path.parent().unwrap_or(Path::new("."));
        Self::from_toml(&text, dir)
    }
}

fn anchor(config_dir: &Path, path: &str) -> PathBuf {
    let p = PathBuf::from(path);
    if p.is_absolute() {
        p
    } else {
        config_dir.join(p)
    }
}

fn take_usize(
    section: &mut BTreeMap<String, TomlValue>,
    key: &str,
) -> Result<Option<usize>, String> {
    match section.remove(key) {
        None => Ok(None),
        Some(TomlValue::Int(i)) if i >= 0 => Ok(Some(i as usize)),
        Some(_) => Err(format!("`{key}` must be a non-negative integer")),
    }
}

fn take_bool(section: &mut BTreeMap<String, TomlValue>, key: &str) -> Result<Option<bool>, String> {
    match section.remove(key) {
        None => Ok(None),
        Some(TomlValue::Bool(b)) => Ok(Some(b)),
        Some(_) => Err(format!("`{key}` must be a boolean")),
    }
}

fn take_str(
    section: &mut BTreeMap<String, TomlValue>,
    key: &str,
) -> Result<Option<String>, String> {
    match section.remove(key) {
        None => Ok(None),
        Some(TomlValue::Str(s)) => Ok(Some(s)),
        Some(_) => Err(format!("`{key}` must be a string")),
    }
}

fn take_f64(section: &mut BTreeMap<String, TomlValue>, key: &str) -> Result<Option<f64>, String> {
    match section.remove(key) {
        None => Ok(None),
        Some(TomlValue::Float(f)) => Ok(Some(f)),
        Some(TomlValue::Int(i)) => Ok(Some(i as f64)),
        Some(_) => Err(format!("`{key}` must be a number")),
    }
}

fn reject_unknown(section: &BTreeMap<String, TomlValue>, what: &str) -> Result<(), String> {
    if let Some(key) = section.keys().next() {
        return Err(format!("unknown key `{key}` in {what}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_parses_with_every_override() {
        let text = r#"
# A fleet of three cells, checkpointing every 4 slots.
scenario = "hotspot-shift"
cells = 3
seed = 42
state_dir = "run/state"   # relative to the config file
control_socket = "/tmp/fleetd.sock"
start_paused = true
window_slots = 2

[admission]
policy = "cautious"

[balancer]
enabled = true
policy = "predictive"
cadence_slots = 6
max_migrations_per_round = 1
min_load_gap = 0.5
violation_weight = 0.25
min_slices_per_cell = 2

[checkpoint]
cadence_slots = 4
retain = 2
"#;
        let config = FleetdConfig::from_toml(text, Path::new("/etc/fleetd")).unwrap();
        assert_eq!(config.scenario, "hotspot-shift");
        assert_eq!(config.fleet.cells, 3);
        assert_eq!(config.fleet.base.seed, 42);
        assert_eq!(config.state_dir, Path::new("/etc/fleetd/run/state"));
        assert_eq!(config.control_socket, Path::new("/tmp/fleetd.sock"));
        assert!(config.start_paused);
        assert_eq!(config.window_slots, 2);
        assert_eq!(config.fleet.base.admission.policy.as_str(), "cautious");
        assert_eq!(config.fleet.balancer.policy.as_str(), "predictive");
        assert_eq!(config.fleet.balancer.cadence_slots, 6);
        assert_eq!(config.fleet.balancer.min_load_gap, 0.5);
        assert_eq!(config.fleet.balancer.min_slices_per_cell, 2);
        assert_eq!(config.checkpoint.cadence_slots, 4);
        assert_eq!(config.checkpoint.retain, 2);
    }

    #[test]
    fn defaults_fill_everything_but_the_scenario() {
        let config =
            FleetdConfig::from_toml("scenario = \"cell-outage\"", Path::new("/srv")).unwrap();
        assert_eq!(config.fleet.cells, 2);
        assert_eq!(config.fleet.base.seed, 0);
        assert_eq!(config.state_dir, Path::new("/srv/fleetd-state"));
        assert_eq!(
            config.control_socket,
            Path::new("/srv/fleetd-state/control.sock")
        );
        assert!(!config.start_paused);
        assert_eq!(config.window_slots, 1);
        assert_eq!(config.checkpoint, CheckpointPolicy::default());
        assert_eq!(config.fleet.balancer, BalancerConfig::default());
    }

    #[test]
    fn typos_and_malformed_lines_are_startup_errors() {
        let dir = Path::new(".");
        assert!(FleetdConfig::from_toml("", dir)
            .unwrap_err()
            .contains("missing required key `scenario`"));
        assert!(FleetdConfig::from_toml("scenario = \"x\"\ncelsl = 2", dir)
            .unwrap_err()
            .contains("unknown key `celsl`"));
        assert!(
            FleetdConfig::from_toml("scenario = \"x\"\n[balancer]\ncadence = 3", dir)
                .unwrap_err()
                .contains("unknown key `cadence` in [balancer]")
        );
        assert!(
            FleetdConfig::from_toml("scenario = \"x\"\n[checkpoint]\nretain = 0", dir)
                .unwrap_err()
                .contains("retain")
        );
        assert!(
            FleetdConfig::from_toml("scenario = \"x\"\nbroken line", dir)
                .unwrap_err()
                .contains("expected `key = value`")
        );
        let err =
            FleetdConfig::from_toml("scenario = \"x\"\n[balancer]\npolicy = \"fastest\"", dir)
                .unwrap_err();
        assert!(err.contains("unknown balance policy `fastest`"), "{err}");
        let err = FleetdConfig::from_toml("scenario = \"x\"\n[admission]\npolicy = \"open\"", dir)
            .unwrap_err();
        assert!(err.contains("unknown admission policy `open`"), "{err}");
        assert!(
            FleetdConfig::from_toml("scenario = \"x\"\n[weird]\nk = 1", dir)
                .unwrap_err()
                .contains("unknown section `[weird]`")
        );
    }

    #[test]
    fn toml_subset_handles_comments_strings_and_duplicates() {
        let table = parse_toml("a = \"quoted # not a comment\" # real comment\nb = -3\n").unwrap();
        assert_eq!(
            table[""]["a"],
            TomlValue::Str("quoted # not a comment".to_string())
        );
        assert_eq!(table[""]["b"], TomlValue::Int(-3));
        assert!(parse_toml("a = 1\na = 2")
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse_toml("a = [1, 2]")
            .unwrap_err()
            .contains("unsupported value"));
        assert!(parse_toml("[open\na=1")
            .unwrap_err()
            .contains("unterminated section"));
    }
}
