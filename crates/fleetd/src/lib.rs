//! # onslicing-fleetd
//!
//! The elastic fleet as a long-running **service daemon**. Everything the
//! rest of the workspace runs as a one-shot simulation —
//! [`onslicing_fleet::ElasticFleetRunner`] building a fleet, stepping it
//! to the end and aggregating a report — `fleetd` runs continuously:
//!
//! * **Config file** ([`config`]) — a `config.toml` names the built-in
//!   fleet scenario, the fleet shape (cells, seed, balancer tuning), the
//!   state directory, the control-socket path and the checkpoint
//!   cadence/retention. Parsed by a vendored-dependency-free TOML-subset
//!   parser that treats typos as startup errors.
//! * **Exclusive state dir** ([`lock`]) — one daemon per state directory,
//!   enforced by a PID lock file; locks left by crashed daemons are
//!   detected (dead PID) and reclaimed automatically.
//! * **Live control plane** ([`protocol`], [`daemon`]) — line-delimited
//!   JSON over a Unix domain socket: `admit`, `teardown`, `renegotiate`,
//!   `status`, `telemetry`, `checkpoint`, `pause`/`resume`/`step` and
//!   `shutdown`. Requests apply only at fleet sync boundaries through the
//!   same admission machinery as scripted events, and every request is
//!   audit-logged with the slot it applied at — a daemon run is a pure
//!   function of (config, checkpoint, request log).
//! * **Bit-exact restarts** — state is checkpointed crash-safely on a
//!   slot cadence via [`onslicing_fleet::FleetCheckpoint`]; on startup the
//!   daemon resumes from the newest complete checkpoint. Because each
//!   cell's telemetry recorder travels inside the checkpoint, the final
//!   trace of a stopped-upgraded-resumed daemon is **byte-identical** to
//!   an uninterrupted run's — the rolling-upgrade drill CI enforces.

pub mod config;
pub mod daemon;
pub mod lock;
pub mod protocol;

pub use config::{CheckpointPolicy, FleetdConfig};
pub use daemon::{
    final_trace_path, run, send_request, ExitReason, MAX_REQUEST_LINE_BYTES, REQUEST_LOG_NAME,
};
pub use lock::{StateLock, LOCK_FILE_NAME};
pub use protocol::{error_response, ok_response, Request, DEFAULT_TELEMETRY_WINDOW};
