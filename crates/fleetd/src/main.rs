//! `fleetd` — the elastic fleet as a service.
//!
//! ```text
//! fleetd run <config.toml>          start the daemon (foreground)
//! fleetd ctl <socket> <json-line>   send one control request, print the response
//! ```
//!
//! See the crate docs ([`onslicing_fleetd`]) and the repository README's
//! "Service mode" section for the config-file reference and the protocol
//! catalogue.

use std::path::Path;
use std::process::ExitCode;

use onslicing_fleetd::{run, send_request, FleetdConfig};

const USAGE: &str = "usage:\n  fleetd run <config.toml>\n  fleetd ctl <socket> <json-line>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") if args.len() == 2 => FleetdConfig::load(Path::new(&args[1]))
            .and_then(run)
            .map(|reason| eprintln!("fleetd: exiting ({reason:?})")),
        Some("ctl") if args.len() == 3 => {
            send_request(Path::new(&args[1]), &args[2]).map(|response| println!("{response}"))
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fleetd: {e}");
            ExitCode::FAILURE
        }
    }
}
