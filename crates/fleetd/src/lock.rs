//! The state-directory lock: one daemon per state dir, enforced by a PID
//! lock file with stale-lock reclamation.
//!
//! Two daemons sharing a state directory would interleave checkpoints and
//! race on the control socket, so acquisition is exclusive: the lock file
//! is created with `O_CREAT | O_EXCL` (atomic on every filesystem the
//! daemon targets) and holds the owner's PID. A daemon that died without
//! cleanup leaves the file behind; the next acquisition reads the PID,
//! checks liveness via `/proc/<pid>` and reclaims the lock if the owner is
//! gone — crash recovery must not require a human to delete lock files.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Name of the lock file inside the state directory.
pub const LOCK_FILE_NAME: &str = "fleetd.lock";

/// An acquired state-directory lock; released (file removed) on drop.
#[derive(Debug)]
pub struct StateLock {
    path: PathBuf,
    pid: u32,
}

/// Whether a process with this PID is currently alive, per `/proc`.
/// A PID that cannot be probed is conservatively considered alive.
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

impl StateLock {
    /// Acquires the lock for `state_dir`, reclaiming a stale lock whose
    /// owner PID is dead. Returns a clear "already running" error when a
    /// live owner holds it. `reclaimed` notes (for the caller's log line)
    /// whether a stale lock was swept.
    pub fn acquire(state_dir: &Path) -> Result<(Self, bool), String> {
        let path = state_dir.join(LOCK_FILE_NAME);
        let pid = std::process::id();
        let mut reclaimed = false;
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    file.write_all(pid.to_string().as_bytes())
                        .and_then(|()| file.sync_all())
                        .map_err(|e| format!("cannot write lock {}: {e}", path.display()))?;
                    return Ok((Self { path, pid }, reclaimed));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let owner = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match owner {
                        Some(owner) if pid_alive(owner) => {
                            return Err(format!(
                                "state dir {} is locked by a running fleetd (pid {owner})",
                                state_dir.display()
                            ));
                        }
                        _ => {
                            // Stale (dead owner) or unreadable/torn lock:
                            // sweep it and retry the exclusive create. The
                            // race window against a concurrent reclaimer is
                            // closed by `create_new` — exactly one retry
                            // wins.
                            std::fs::remove_file(&path).map_err(|e| {
                                format!("cannot remove stale lock {}: {e}", path.display())
                            })?;
                            reclaimed = true;
                        }
                    }
                }
                Err(e) => return Err(format!("cannot create lock {}: {e}", path.display())),
            }
        }
    }

    /// The lock file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StateLock {
    fn drop(&mut self) {
        // Only remove a lock that is still ours — if the file was reclaimed
        // (we must have died as far as others could tell; clock weirdness,
        // manual intervention), deleting it would break the new owner.
        let ours = std::fs::read_to_string(&self.path)
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
            .is_some_and(|owner| owner == self.pid);
        if ours {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fleetd-lock-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn second_acquisition_is_refused_while_owner_lives() {
        let dir = temp_dir("double");
        let (lock, reclaimed) = StateLock::acquire(&dir).unwrap();
        assert!(!reclaimed);
        // Our own PID is alive, so a second acquire must fail…
        let err = StateLock::acquire(&dir).unwrap_err();
        assert!(err.contains("locked by a running fleetd"), "{err}");
        drop(lock);
        // …and releasing the lock frees the dir.
        let (_lock, reclaimed) = StateLock::acquire(&dir).unwrap();
        assert!(!reclaimed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_and_garbage_locks_are_reclaimed() {
        let dir = temp_dir("stale");
        // A PID that cannot exist: pid_max on Linux caps at 2^22.
        std::fs::write(dir.join(LOCK_FILE_NAME), "4194999").unwrap();
        let (lock, reclaimed) = StateLock::acquire(&dir).unwrap();
        assert!(reclaimed);
        drop(lock);
        std::fs::write(dir.join(LOCK_FILE_NAME), "not-a-pid").unwrap();
        let (_lock, reclaimed) = StateLock::acquire(&dir).unwrap();
        assert!(reclaimed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_leaves_a_foreign_lock_alone() {
        let dir = temp_dir("foreign");
        let (lock, _) = StateLock::acquire(&dir).unwrap();
        // Simulate a reclaim by another process while we still hold the
        // handle: the file now names someone else.
        std::fs::write(dir.join(LOCK_FILE_NAME), "4194998").unwrap();
        drop(lock);
        assert!(dir.join(LOCK_FILE_NAME).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
