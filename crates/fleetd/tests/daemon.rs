//! End-to-end tests of the `fleetd` binary: lock discipline, crash
//! recovery (SIGKILL mid-run and mid-checkpoint-write) and the rolling
//! upgrade drill — stop, restart on the same state dir, and require the
//! final trace to be **byte-identical** to an uninterrupted run's.
//!
//! Every test drives a real daemon process (`CARGO_BIN_EXE_fleetd`) over
//! its Unix control socket. Runs start paused and advance via `step`, so
//! control requests land at scripted slots and the comparisons are exact.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use serde::Value;

use onslicing_fleet::{ElasticFleet, ElasticFleetConfig};
use onslicing_fleetd::{
    final_trace_path, send_request, LOCK_FILE_NAME, MAX_REQUEST_LINE_BYTES, REQUEST_LOG_NAME,
};
use onslicing_replay::ATOMIC_WRITE_PAUSE_ENV;
use onslicing_scenario::fleet_by_name;

const SCENARIO: &str = "hotspot-shift";
const SEED: u64 = 17;
const CELLS: usize = 2;

struct TestDir {
    root: PathBuf,
}

impl TestDir {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("fleetd-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn state_dir(&self) -> PathBuf {
        self.root.join("state")
    }

    fn socket(&self) -> PathBuf {
        self.state_dir().join("control.sock")
    }

    /// Writes a config.toml with the shared test fleet shape. Checkpoint
    /// cadence 8, retention 2 (small enough that GC actually runs).
    fn write_config(&self) -> PathBuf {
        let path = self.root.join("config.toml");
        std::fs::write(
            &path,
            format!(
                "scenario = \"{SCENARIO}\"\ncells = {CELLS}\nseed = {SEED}\n\
                 state_dir = \"state\"\nstart_paused = true\n\n\
                 [checkpoint]\ncadence_slots = 8\nretain = 2\n"
            ),
        )
        .unwrap();
        path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn spawn_daemon(config: &Path, extra_env: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fleetd"));
    cmd.arg("run")
        .arg(config)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    cmd.spawn().expect("cannot spawn fleetd")
}

/// Waits until the daemon answers `status` on its socket.
fn wait_ready(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(response) = send_request(socket, "{\"op\":\"status\"}") {
            if response.contains("\"ok\":true") {
                return;
            }
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_exit(child: &mut Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(Instant::now() < deadline, "daemon never exited");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Sends one request and asserts the transport-level send worked.
fn ctl(socket: &Path, line: &str) -> Value {
    let response = send_request(socket, line).unwrap_or_else(|e| panic!("ctl {line}: {e}"));
    serde_json::from_str(&response).expect("response is JSON")
}

fn ctl_ok(socket: &Path, line: &str) -> Value {
    let response = ctl(socket, line);
    assert_eq!(
        response.get("ok").and_then(Value::as_bool),
        Some(true),
        "request {line} failed: {response:?}"
    );
    response
}

fn total_slots() -> usize {
    fleet_by_name(SCENARIO).unwrap().base.total_slots
}

fn fleet_config() -> ElasticFleetConfig {
    ElasticFleetConfig::new(CELLS).with_seed(SEED)
}

/// The trace an uninterrupted in-process run produces with no live events.
fn reference_trace_plain() -> String {
    let mut fleet = ElasticFleet::new(fleet_by_name(SCENARIO).unwrap(), fleet_config()).unwrap();
    fleet.advance_to(total_slots()).unwrap();
    fleet.finish(0.0).unwrap().trace.to_json()
}

/// Drives a paused daemon to completion and returns the final trace text.
/// The daemon finalizes (writes the trace and exits) once it is complete
/// and unpaused.
fn run_to_completion(socket: &Path, state_dir: &Path, child: &mut Child) -> String {
    ctl_ok(
        socket,
        &format!("{{\"op\":\"step\",\"to_slot\":{}}}", total_slots()),
    );
    ctl_ok(socket, "{\"op\":\"resume\"}");
    let status = wait_exit(child);
    assert!(status.success(), "daemon exited with {status:?}");
    std::fs::read_to_string(final_trace_path(state_dir, SCENARIO)).expect("final trace written")
}

#[test]
fn double_start_is_refused_and_stale_locks_are_reclaimed() {
    let dir = TestDir::new("lock");
    let config = dir.write_config();
    let mut daemon = spawn_daemon(&config, &[]);
    wait_ready(&dir.socket());

    // A second daemon on the same state dir must refuse to start and say
    // who holds the lock.
    let second = Command::new(env!("CARGO_BIN_EXE_fleetd"))
        .arg("run")
        .arg(&config)
        .output()
        .unwrap();
    assert!(!second.status.success());
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr.contains("locked by a running fleetd"),
        "unexpected stderr: {stderr}"
    );

    // Graceful shutdown releases the lock and removes the socket.
    let response = ctl_ok(&dir.socket(), "{\"op\":\"shutdown\"}");
    assert!(response.get("checkpoint").is_some());
    assert!(wait_exit(&mut daemon).success());
    assert!(!dir.state_dir().join(LOCK_FILE_NAME).exists());
    assert!(!dir.socket().exists());

    // A lock left by a dead process (impossible PID) is reclaimed.
    std::fs::write(dir.state_dir().join(LOCK_FILE_NAME), "4194999").unwrap();
    let mut daemon = spawn_daemon(&config, &[]);
    wait_ready(&dir.socket());
    let status = ctl_ok(&dir.socket(), "{\"op\":\"status\"}");
    // The shutdown above checkpointed slot 0, so the reclaimed daemon
    // resumed rather than started fresh.
    assert_eq!(
        status.get("scenario").and_then(Value::as_str),
        Some(SCENARIO)
    );
    ctl_ok(&dir.socket(), "{\"op\":\"shutdown\"}");
    assert!(wait_exit(&mut daemon).success());
}

#[test]
fn rolling_upgrade_drill_is_bit_exact() {
    // Uninterrupted arm: one daemon process runs the whole scenario with a
    // live admission at slot 20.
    let uninterrupted = TestDir::new("drill-a");
    let config = uninterrupted.write_config();
    let mut daemon = spawn_daemon(&config, &[]);
    wait_ready(&uninterrupted.socket());
    ctl_ok(&uninterrupted.socket(), "{\"op\":\"step\",\"to_slot\":20}");
    let admit = ctl_ok(
        &uninterrupted.socket(),
        "{\"op\":\"admit\",\"kind\":\"hvs\"}",
    );
    assert_eq!(admit.get("slot").and_then(Value::as_u64), Some(20));
    let reference = run_to_completion(
        &uninterrupted.socket(),
        &uninterrupted.state_dir(),
        &mut daemon,
    );

    // Upgrade arm: same drill, but the daemon is stopped right after the
    // admission and a "rebuilt" daemon resumes the same state dir.
    let upgraded = TestDir::new("drill-b");
    let config = upgraded.write_config();
    let mut first = spawn_daemon(&config, &[]);
    wait_ready(&upgraded.socket());
    ctl_ok(&upgraded.socket(), "{\"op\":\"step\",\"to_slot\":20}");
    let admit = ctl_ok(&upgraded.socket(), "{\"op\":\"admit\",\"kind\":\"hvs\"}");
    assert_eq!(
        admit.get("outcome").and_then(Value::as_str),
        Some("granted")
    );
    ctl_ok(&upgraded.socket(), "{\"op\":\"shutdown\"}");
    assert!(wait_exit(&mut first).success());

    let mut second = spawn_daemon(&config, &[]);
    wait_ready(&upgraded.socket());
    let status = ctl_ok(&upgraded.socket(), "{\"op\":\"status\"}");
    assert_eq!(
        status.get("slot").and_then(Value::as_u64),
        Some(20),
        "second daemon must resume at the shutdown slot"
    );
    let trace = run_to_completion(&upgraded.socket(), &upgraded.state_dir(), &mut second);

    assert_eq!(
        trace, reference,
        "upgraded run's final trace must be byte-identical to the uninterrupted run's"
    );
    // Both arms audit-logged their requests.
    assert!(uninterrupted.state_dir().join(REQUEST_LOG_NAME).exists());
    assert!(upgraded.state_dir().join(REQUEST_LOG_NAME).exists());
}

#[test]
fn sigkill_mid_run_resumes_from_the_cadence_checkpoint() {
    let dir = TestDir::new("kill");
    let config = dir.write_config();
    let mut daemon = spawn_daemon(&config, &[]);
    wait_ready(&dir.socket());
    // Crossing slot 8 (the cadence) writes checkpoint_0000000012.json.
    ctl_ok(&dir.socket(), "{\"op\":\"step\",\"to_slot\":12}");
    assert!(dir.state_dir().join("checkpoint_0000000012.json").exists());
    daemon.kill().unwrap();
    let _ = daemon.wait();
    // The crash left the lock behind.
    assert!(dir.state_dir().join(LOCK_FILE_NAME).exists());

    let mut revived = spawn_daemon(&config, &[]);
    wait_ready(&dir.socket());
    let status = ctl_ok(&dir.socket(), "{\"op\":\"status\"}");
    assert_eq!(status.get("slot").and_then(Value::as_u64), Some(12));
    let trace = run_to_completion(&dir.socket(), &dir.state_dir(), &mut revived);
    assert_eq!(
        trace,
        reference_trace_plain(),
        "post-crash trace must match an uninterrupted run"
    );
}

#[test]
fn sigkill_mid_checkpoint_write_falls_back_to_the_previous_checkpoint() {
    let dir = TestDir::new("torn");
    let config = dir.write_config();
    // Every atomic write in this daemon pauses 1.5 s between fsync and
    // rename — a wide-open window to kill it with a .tmp on disk.
    let mut daemon = spawn_daemon(&config, &[(ATOMIC_WRITE_PAUSE_ENV, "1500")]);
    wait_ready(&dir.socket());
    ctl_ok(&dir.socket(), "{\"op\":\"step\",\"to_slot\":4}");
    // A complete checkpoint at slot 4 (the forced write also pauses, so
    // this request takes ~1.5 s — it must still succeed).
    ctl_ok(&dir.socket(), "{\"op\":\"checkpoint\"}");
    assert!(dir.state_dir().join("checkpoint_0000000004.json").exists());
    ctl_ok(&dir.socket(), "{\"op\":\"step\",\"to_slot\":6}");

    // Ask for another checkpoint without waiting for the reply, poll for
    // the torn temp file, and SIGKILL the daemon mid-write.
    let socket = dir.socket();
    let writer = std::thread::spawn(move || {
        // The daemon dies mid-request; the failure is the point.
        let _ = send_request(&socket, "{\"op\":\"checkpoint\"}");
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let torn = std::fs::read_dir(dir.state_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".tmp"));
        if torn {
            break;
        }
        assert!(Instant::now() < deadline, "no .tmp ever appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.kill().unwrap();
    let _ = daemon.wait();
    writer.join().unwrap();
    // The torn write never reached checkpoint_0000000006.json.
    assert!(!dir.state_dir().join("checkpoint_0000000006.json").exists());

    // Restart (no write pause): the daemon must resume from slot 4 — the
    // newest *complete* checkpoint — and finish bit-exactly.
    let mut revived = spawn_daemon(&config, &[]);
    wait_ready(&dir.socket());
    let status = ctl_ok(&dir.socket(), "{\"op\":\"status\"}");
    assert_eq!(
        status.get("slot").and_then(Value::as_u64),
        Some(4),
        "must resume from the last complete checkpoint, not the torn one"
    );
    let trace = run_to_completion(&dir.socket(), &dir.state_dir(), &mut revived);
    assert_eq!(trace, reference_trace_plain());
}

#[test]
fn live_control_verbs_round_trip_against_a_real_daemon() {
    let dir = TestDir::new("verbs");
    let config = dir.write_config();
    let mut daemon = spawn_daemon(&config, &[]);
    wait_ready(&dir.socket());
    ctl_ok(&dir.socket(), "{\"op\":\"step\",\"to_slot\":10}");

    // Telemetry reflects the stepped window.
    let telemetry = ctl_ok(&dir.socket(), "{\"op\":\"telemetry\",\"window\":10}");
    assert_eq!(telemetry.get("slot").and_then(Value::as_u64), Some(10));
    let cells = match telemetry.get("cells") {
        Some(Value::Arr(cells)) => cells,
        other => panic!("cells should be an array, got {other:?}"),
    };
    assert_eq!(cells.len(), CELLS);
    for cell in cells {
        assert_eq!(cell.get("window_slots").and_then(Value::as_u64), Some(10));
        assert!(cell.get("window_avg_cost").and_then(Value::as_f64).unwrap() >= 0.0);
    }

    // Renegotiate a live slice's SLA, then tear it down; the second
    // teardown of the same slice is a skip, not an error.
    let renegotiate = ctl_ok(
        &dir.socket(),
        "{\"op\":\"renegotiate\",\"cell\":0,\"slice\":0,\"cost_threshold\":0.5}",
    );
    assert_eq!(
        renegotiate.get("outcome").and_then(Value::as_str),
        Some("applied")
    );
    let teardown = ctl_ok(
        &dir.socket(),
        "{\"op\":\"teardown\",\"cell\":0,\"slice\":0}",
    );
    assert_eq!(
        teardown.get("outcome").and_then(Value::as_str),
        Some("applied")
    );
    let again = ctl_ok(
        &dir.socket(),
        "{\"op\":\"teardown\",\"cell\":0,\"slice\":0}",
    );
    assert_eq!(
        again.get("outcome").and_then(Value::as_str),
        Some("skipped")
    );

    // Unknown ops and unknown cells are errors, not crashes.
    let bad = ctl(&dir.socket(), "{\"op\":\"frobnicate\"}");
    assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
    let bad = ctl(
        &dir.socket(),
        "{\"op\":\"teardown\",\"cell\":9,\"slice\":0}",
    );
    assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));

    // Checkpoint retention: force several checkpoints and verify GC keeps
    // only the configured two newest.
    for to_slot in [16, 24, 32] {
        ctl_ok(
            &dir.socket(),
            &format!("{{\"op\":\"step\",\"to_slot\":{to_slot}}}"),
        );
        ctl_ok(&dir.socket(), "{\"op\":\"checkpoint\"}");
    }
    let checkpoints: Vec<String> = std::fs::read_dir(dir.state_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("checkpoint_") && n.ends_with(".json"))
        .collect();
    assert_eq!(
        checkpoints.len(),
        2,
        "retention must keep exactly two: {checkpoints:?}"
    );
    assert!(checkpoints.contains(&"checkpoint_0000000024.json".to_string()));
    assert!(checkpoints.contains(&"checkpoint_0000000032.json".to_string()));

    ctl_ok(&dir.socket(), "{\"op\":\"shutdown\"}");
    assert!(wait_exit(&mut daemon).success());
}

/// Opens a raw client connection, writes `payload` verbatim (no newline
/// appended, no JSON discipline) and returns the first response line, or
/// `None` if the daemon closed the connection without answering.
fn raw_request(socket: &Path, payload: &[u8]) -> Option<String> {
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};
    let stream = std::os::unix::net::UnixStream::connect(socket).expect("connect");
    let mut write_half = stream.try_clone().expect("clone");
    write_half.write_all(payload).expect("send");
    // Shut the write side so an oversized line (which the daemon abandons
    // mid-read) still yields EOF to its reader and a response to us.
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("shutdown write side");
    let mut response = String::new();
    let mut reader = BufReader::new(stream);
    match reader.read_line(&mut response) {
        Ok(0) | Err(_) => None,
        Ok(_) => {
            // Nothing may follow the one response line on this connection.
            let mut rest = Vec::new();
            let _ = reader.read_to_end(&mut rest);
            Some(response.trim_end().to_string())
        }
    }
}

#[test]
fn garbage_truncated_and_oversized_requests_never_kill_the_daemon() {
    let dir = TestDir::new("garbage");
    let config = dir.write_config();
    let mut daemon = spawn_daemon(&config, &[]);
    wait_ready(&dir.socket());

    // Plain garbage, truncated JSON, wrong types, unknown ops: every one
    // gets a JSON error response on its own connection.
    for payload in [
        "not json at all\n".as_bytes(),
        b"{\"op\":\"sta\n",
        b"{\"op\":\"status\"\n",
        b"{\"op\":42}\n",
        b"{\"op\":\"admit\"}\n",
        b"{\"op\":\"admit\",\"kind\":\"xxl\"}\n",
        b"{\"op\":\"step\",\"to_slot\":\"many\"}\n",
        b"[1,2,3]\n",
        b"\n\n{\"op\":\"status\"}\n",
    ] {
        let response = raw_request(&dir.socket(), payload)
            .unwrap_or_else(|| panic!("no response to {:?}", String::from_utf8_lossy(payload)));
        let value: Value = serde_json::from_str(&response).expect("response is JSON");
        assert!(
            value.get("ok").and_then(Value::as_bool).is_some(),
            "response must be a protocol object: {response}"
        );
    }

    // Invalid UTF-8 gets an error response and the connection survives.
    let response = raw_request(&dir.socket(), b"\xff\xfe garbage bytes \xff\n").unwrap();
    assert!(response.contains("not valid UTF-8"), "{response}");

    // An oversized line (cap + margin, no newline until the end) must be
    // answered with a bounded-memory error, not buffered indefinitely.
    let mut huge = vec![b'x'; MAX_REQUEST_LINE_BYTES + 1024];
    huge.push(b'\n');
    let response = raw_request(&dir.socket(), &huge).expect("oversized line gets a response");
    assert!(
        response.contains("exceeds") && response.contains("\"ok\":false"),
        "{response}"
    );

    // A huge line that IS valid JSON is still rejected at the transport
    // cap — request size is bounded before parsing ever sees it.
    let padded = format!(
        "{{\"op\":\"status\",\"pad\":\"{}\"}}\n",
        "y".repeat(MAX_REQUEST_LINE_BYTES)
    );
    let response =
        raw_request(&dir.socket(), padded.as_bytes()).expect("padded line gets a response");
    assert!(response.contains("exceeds"), "{response}");

    // After all of that abuse the daemon still serves real requests.
    let status = ctl_ok(&dir.socket(), "{\"op\":\"status\"}");
    assert_eq!(status.get("slot").and_then(Value::as_u64), Some(0));
    ctl_ok(&dir.socket(), "{\"op\":\"step\",\"to_slot\":4}");
    let status = ctl_ok(&dir.socket(), "{\"op\":\"status\"}");
    assert_eq!(status.get("slot").and_then(Value::as_u64), Some(4));

    ctl_ok(&dir.socket(), "{\"op\":\"shutdown\"}");
    assert!(wait_exit(&mut daemon).success());
}
